"""Persistent NUMA-aware worker pool for the fault-tolerant runner.

:mod:`repro.sim.runner` used to spawn one subprocess per *attempt*,
paying the full interpreter/numpy import cost for every task.  This
module provides the execution fabric underneath the runner instead:

* **long-lived workers** — ``jobs`` subprocesses are started once per
  batch and amortize import/config cost across every task they run;
* **pipe-based task/result transport** — the parent sends
  ``(key, fn, args)`` down a duplex pipe and receives the pickled result
  back over the same pipe; large results are optionally handed over via
  POSIX shared memory (:data:`SHM_MIN_ENV`) so multi-megabyte payloads
  never serialize through the 64 KiB pipe buffer chunk by chunk;
* **crash containment with respawn** — a worker that segfaults, gets
  OOM-killed, or exceeds its deadline only loses its *own* task; the
  pool respawns a replacement in its slot and the batch continues
  (the classic ``BrokenProcessPool`` failure mode cannot happen);
* **NUMA placement** — with ``pin=True`` workers are distributed
  round-robin over the host's NUMA nodes and pinned to disjoint CPU
  slices of their node via :func:`os.sched_setaffinity` (a silent no-op
  on platforms without affinity support), applying the paper's
  locality thesis to the host-side sweep fabric itself.

Scheduling policy (retries, backoff, deadlines, fail-fast, journaling)
stays in :mod:`repro.sim.runner`; this module owns only the process
mechanics.

Nothing here runs on the simulated path: results are produced by the
task callables and transported byte-identically, so pooled execution is
bit-identical to the serial in-process loop.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

# Fault injection for drilling the harness itself lives in
# :mod:`repro.sim.chaos` — both the legacy single-fault env hook and
# the seeded multi-fault ChaosPlan engine (docs/chaos.md).  The pool
# re-exports the legacy env contract and fires the hooks at its two
# fault sites: task entry (worker loop) and shared-memory export.
from repro.sim.chaos import (
    FAULT_ENV as FAULT_ENV,  # re-export: the env contract is part of the API
    FAULT_STATE_ENV as FAULT_STATE_ENV,
    SITE_SHM_EXPORT as _SITE_SHM_EXPORT,
    fire as _chaos_fire,
    fire_task as _maybe_inject_fault,
)


# ---------------------------------------------------------------------------
# NUMA topology & affinity planning
# ---------------------------------------------------------------------------

_SYS_NODE_DIR = Path("/sys/devices/system/node")


def parse_cpulist(text: str) -> list[int]:
    """Parse a kernel ``cpulist`` string (``"0-3,8,10-11"``) to CPU ids."""
    cpus: list[int] = []
    for chunk in text.strip().split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "-" in chunk:
            lo, hi = chunk.split("-", 1)
            cpus.extend(range(int(lo), int(hi) + 1))
        else:
            cpus.append(int(chunk))
    return cpus


def _process_cpus() -> list[int]:
    """CPUs this process may run on (flat fallback topology)."""
    try:
        return sorted(os.sched_getaffinity(0))
    except AttributeError:  # platform without affinity (macOS, Windows)
        return list(range(os.cpu_count() or 1))


def numa_nodes(sys_dir: Optional[Path] = None) -> list[list[int]]:
    """CPU ids grouped by NUMA node, in node order.

    Reads ``/sys/devices/system/node/node*/cpulist`` on Linux; on other
    platforms (or stripped-down containers) falls back to a single flat
    node holding every CPU the process may run on, so callers never
    need a NUMA special case.
    """
    base = sys_dir if sys_dir is not None else _SYS_NODE_DIR
    nodes: list[list[int]] = []
    try:
        node_dirs = sorted(
            (p for p in base.iterdir()
             if p.name.startswith("node") and p.name[4:].isdigit()),
            key=lambda p: int(p.name[4:]),
        )
    except OSError:
        node_dirs = []
    for node_dir in node_dirs:
        try:
            cpus = parse_cpulist((node_dir / "cpulist").read_text())
        except (OSError, ValueError):
            continue
        if cpus:
            nodes.append(cpus)
    return nodes or [_process_cpus()]


def plan_affinity(
    jobs: int,
    pin: bool,
    nodes: Optional[Sequence[Sequence[int]]] = None,
) -> list[Optional[tuple[int, ...]]]:
    """Per-worker CPU sets for *jobs* workers.

    Unpinned: every entry is ``None`` (inherit the parent's affinity).
    Pinned: workers are placed round-robin across NUMA nodes — worker
    *i* on node ``i % n_nodes`` — and the workers sharing one node split
    its CPU list into disjoint contiguous slices, so each worker's
    memory allocations and scheduling stay on one node (the
    process-per-node recipe).  When a node has fewer CPUs than workers,
    the whole node set is shared instead.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if not pin:
        return [None] * jobs
    topo = [list(n) for n in (nodes if nodes is not None else numa_nodes())]
    topo = [n for n in topo if n] or [_process_cpus()]
    per_node: dict[int, list[int]] = {}
    for worker in range(jobs):
        per_node.setdefault(worker % len(topo), []).append(worker)
    plan: list[Optional[tuple[int, ...]]] = [None] * jobs
    for node_idx, workers in per_node.items():
        cpus = topo[node_idx]
        share = len(workers)
        for rank, worker in enumerate(workers):
            if share <= len(cpus):
                lo = (rank * len(cpus)) // share
                hi = ((rank + 1) * len(cpus)) // share
                plan[worker] = tuple(cpus[lo:hi])
            else:
                plan[worker] = tuple(cpus)
    return plan


def plan_nodes(
    jobs: int,
    pin: bool,
    nodes: Optional[Sequence[Sequence[int]]] = None,
) -> list[int]:
    """The NUMA node each worker slot lands on (-1 when unpinned).

    Mirrors the round-robin placement of :func:`plan_affinity` — worker
    *i* on node ``i % n_nodes`` — so trace tracks and drill reports can
    label slots with the node they actually ran on.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if not pin:
        return [-1] * jobs
    topo = [list(n) for n in (nodes if nodes is not None else numa_nodes())]
    topo = [n for n in topo if n] or [_process_cpus()]
    return [i % len(topo) for i in range(jobs)]


def _apply_affinity(cpus: Optional[Sequence[int]]) -> None:
    """Pin the calling process; silently a no-op where unsupported."""
    if not cpus:
        return
    try:
        os.sched_setaffinity(0, set(cpus))
    except (AttributeError, OSError):
        pass


# ---------------------------------------------------------------------------
# Result transport (pipe, escalating to shared memory for large payloads)
# ---------------------------------------------------------------------------

#: Minimum pickled-result size (bytes) before the worker hands the
#: payload over via POSIX shared memory instead of the pipe.  Set the
#: env var to a smaller number to exercise the path, or to a negative
#: number to disable shared-memory transport entirely.
SHM_MIN_ENV = "REPRO_POOL_SHM_MIN"
DEFAULT_SHM_MIN = 1 << 20

#: Wire-protocol tags (parent -> worker).
MSG_RUN = "run"
MSG_STOP = "stop"
#: Wire-protocol tags (worker -> parent).
OK_INLINE = "ok"
OK_SHM = "ok_shm"
ERR = "error"


def shm_min_bytes() -> int:
    try:
        return int(os.environ.get(SHM_MIN_ENV, DEFAULT_SHM_MIN))
    except ValueError:
        return DEFAULT_SHM_MIN


def _untrack_shm(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    The worker creates the segment but the *parent* unlinks it; without
    unregistering, the worker's resource tracker would try to clean it
    up again at exit and log spurious warnings.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


def _export_payload(payload: bytes, shm_min: int, key: str = "") -> tuple:
    """Worker side: wrap a pickled result for the pipe, or hand it over
    via shared memory when it exceeds *shm_min* (fall back to the pipe
    on any shared-memory failure)."""
    if 0 <= shm_min <= len(payload):
        try:
            # Chaos hook inside the try: an injected shm failure takes
            # the same fallback road a real one would.
            _chaos_fire(_SITE_SHM_EXPORT, key)
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload))
            )
            shm.buf[:len(payload)] = payload
            name = shm.name
            shm.close()
            _untrack_shm(name)
            return (OK_SHM, name, len(payload))
        except Exception:
            pass
    return (OK_INLINE, payload)


def result_payload(message: tuple) -> bytes:
    """Parent side: recover the pickled result bytes from an ``ok``
    message, attaching/copying/unlinking the shared segment when the
    worker used shared-memory transport."""
    if message[0] == OK_INLINE:
        return message[1]
    _, name, size = message
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:size])
    finally:
        shm.close()
        try:
            shm.unlink()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _worker_main(
    conn, affinity: Optional[tuple[int, ...]], shm_min: int,
    trace_spec: Optional[dict] = None,
) -> None:
    """Long-lived worker loop: pin, then serve tasks until ``stop``/EOF.

    With *trace_spec* (``{"dir", "slot", "node"}``) each dispatched task
    that carries a trace context gets a ``task`` span in this worker's
    crash-safe spill file — the begin edge is flushed *before* the task
    (and before the chaos fault site), so a SIGKILL mid-kernel still
    leaves the victim's span on disk for the flight recorder.
    """
    _apply_affinity(affinity)
    spill = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent gone
        if message[0] != MSG_RUN:
            break
        # Messages are 4-tuples, or 5-tuples when the dispatcher attached
        # a trace context — old-shape senders keep working unchanged.
        _, key, fn, args = message[:4]
        wire = message[4] if len(message) > 4 else None
        ctx = None
        if wire is not None and trace_spec is not None:
            # Imported lazily: untraced pools never touch the obs layer.
            from repro.obs.trace import SpanSpill, TraceContext, \
                worker_spill_name

            if spill is None:
                spill = SpanSpill(
                    Path(trace_spec["dir"])
                    / worker_spill_name(trace_spec["slot"]),
                    slot=trace_spec["slot"], node=trace_spec["node"],
                )
            ctx = TraceContext.from_wire(wire).child("task")
            spill.span_begin(ctx, "task", key=key)
        try:
            _maybe_inject_fault(key)
            result = fn(*args)
            payload = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
            reply = _export_payload(payload, shm_min, key)
        except BaseException as exc:  # report SystemExit and friends too
            reply = (
                ERR, type(exc).__name__, str(exc), traceback.format_exc()
            )
        if ctx is not None:
            status = "error" if reply[0] == ERR else "ok"
            spill.span_end(ctx, "task", key=key, status=status)
        try:
            conn.send(reply)
        except Exception:
            break  # parent gone or pipe broken; exit code tells the story
    if spill is not None:
        spill.close()
    conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def kill_process(process) -> None:
    """Terminate a process, escalating to SIGKILL if it ignores SIGTERM."""
    if not process.is_alive():
        process.join()
        return
    process.terminate()
    process.join(timeout=2.0)
    if process.is_alive():
        process.kill()
        process.join()


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------

@dataclass
class PoolWorker:
    """One worker slot: a process, its pipe, and its planned affinity."""

    index: int
    affinity: Optional[tuple[int, ...]]
    #: NUMA node this slot was planned onto (-1 when unpinned) — used
    #: to label the slot's track in assembled traces.
    node: int = -1
    process: Any = None
    conn: Any = None
    #: True once ``recv`` raised EOF/OSError: the pipe must never be
    #: polled again (it would be ready forever); only the process
    #: sentinel remains meaningful and crash handling fires exactly
    #: once, when the process actually exits.
    conn_dead: bool = False
    #: Tasks dispatched to this slot over the pool's lifetime (counts
    #: across respawns — it identifies the slot, not the process).
    tasks_started: int = 0
    #: Deaths since the slot last delivered a result.  The runner's
    #: crash-loop breaker reads this to stop respawning a slot that can
    #: never complete a task (poison task, broken node, OOM treadmill).
    consecutive_deaths: int = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """A fixed set of persistent worker slots with crash containment.

    The caller owns scheduling: it picks an idle worker, ``dispatch``-es
    a task to it, and consumes ``events()`` — ``("result", worker,
    message)`` and ``("died", worker, exitcode)`` tuples — deciding
    itself when to :meth:`respawn` or :meth:`reap` a dead slot and when
    to :meth:`restart_worker` one that overran its deadline.
    """

    def __init__(
        self,
        jobs: int,
        pin: bool = False,
        ctx=None,
        shm_min: Optional[int] = None,
        nodes: Optional[Sequence[Sequence[int]]] = None,
        trace_dir=None,
    ) -> None:
        if jobs <= 0:
            raise ValueError("pool size must be positive")
        self._ctx = ctx if ctx is not None else _mp_context()
        self._shm_min = shm_min if shm_min is not None else shm_min_bytes()
        #: Spans directory passed to every worker (None = tracing off).
        self._trace_dir = str(trace_dir) if trace_dir is not None else None
        node_plan = plan_nodes(jobs, pin, nodes)
        self.workers = [
            PoolWorker(index=i, affinity=plan, node=node_plan[i])
            for i, plan in enumerate(plan_affinity(jobs, pin, nodes))
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def start(self) -> None:
        for worker in self.workers:
            self._spawn(worker)

    def _spawn(self, worker: PoolWorker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        trace_spec = None
        if self._trace_dir is not None:
            trace_spec = {"dir": self._trace_dir, "slot": worker.index,
                          "node": worker.node}
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, worker.affinity, self._shm_min, trace_spec),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.conn_dead = False

    # -- dispatch -------------------------------------------------------

    def dispatch(self, worker: PoolWorker, key: str,
                 fn: Callable[..., Any], args: tuple,
                 span: Optional[dict] = None) -> bool:
        """Send one task to *worker*; False when the pipe is broken
        (caller respawns and retries on another/fresh worker).

        *span* is an optional trace-context wire dict
        (:meth:`repro.obs.trace.TraceContext.to_wire`); when present the
        worker opens a ``task`` span under it in its spill file.
        """
        try:
            if span is None:
                worker.conn.send((MSG_RUN, key, fn, args))
            else:
                worker.conn.send((MSG_RUN, key, fn, args, span))
        except (OSError, ValueError):
            return False
        worker.tasks_started += 1
        return True

    # -- events ---------------------------------------------------------

    def events(self, timeout: Optional[float]) -> list[tuple]:
        """Wait up to *timeout* seconds for worker activity.

        Returns ``("result", worker, message)`` for every complete
        reply and ``("died", worker, exitcode)`` for every worker whose
        process has exited without one.  A pipe that raises EOF while
        its worker is still dying is marked dead and excluded from all
        future waits — the slot surfaces exactly once, as ``died``, via
        the process sentinel.
        """
        objects: dict[Any, tuple[str, PoolWorker]] = {}
        for worker in self.workers:
            if worker.process is None:
                continue
            if not worker.conn_dead:
                objects[worker.conn] = ("conn", worker)
            objects[worker.process.sentinel] = ("sentinel", worker)
        if not objects:
            return []
        try:
            ready = _connection_wait(list(objects), timeout)
        except OSError:
            ready = []
        out: list[tuple] = []
        delivered: set[int] = set()
        for obj in ready:
            kind, worker = objects[obj]
            if kind != "conn":
                continue
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                worker.conn_dead = True  # crash-handled via the sentinel
                continue
            worker.consecutive_deaths = 0
            out.append(("result", worker, message))
            delivered.add(worker.index)
        for obj in ready:
            kind, worker = objects[obj]
            if kind != "sentinel" or worker.index in delivered:
                continue
            process = worker.process
            if process is None:
                continue
            # The sentinel becomes readable while the process is still
            # mid-exit (the kernel closes its fds before the zombie
            # transition), so ``is_alive`` can briefly still say True.
            # Returning "nothing happened" there makes the caller spin
            # hot — on a single-CPU host that starves the dying child
            # and stretches the window to seconds.  Join briefly so the
            # exit code materializes instead.
            process.join(timeout=1.0)
            if not worker.conn_dead:
                # A final reply can land just before the worker dies
                # (e.g. its send succeeded, then it crashed); prefer it.
                try:
                    if worker.conn.poll(0):
                        worker.consecutive_deaths = 0
                        out.append(("result", worker, worker.conn.recv()))
                        delivered.add(worker.index)
                        continue
                except (EOFError, OSError):
                    worker.conn_dead = True
            if not process.is_alive():
                worker.consecutive_deaths += 1
                out.append(("died", worker, process.exitcode))
        return out

    # -- lifecycle ------------------------------------------------------

    def alive_count(self) -> int:
        return sum(1 for w in self.workers if w.alive)

    def reap(self, worker: PoolWorker) -> None:
        """Join a dead worker and retire its slot (no replacement)."""
        if worker.process is not None:
            worker.process.join(timeout=10.0)
        self._close(worker)

    def respawn(self, worker: PoolWorker) -> None:
        """Replace a dead worker's process in the same slot."""
        self.reap(worker)
        self._spawn(worker)

    def restart_worker(self, worker: PoolWorker) -> None:
        """Kill a (possibly hung) worker and start a replacement."""
        self.kill_worker(worker)
        self._spawn(worker)

    def kill_worker(self, worker: PoolWorker) -> None:
        """Kill a worker without replacement (deadline enforcement)."""
        if worker.process is not None:
            kill_process(worker.process)
        self._close(worker)

    def _close(self, worker: PoolWorker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
        worker.process = None
        worker.conn = None
        worker.conn_dead = True

    def shutdown(self, force: bool = False) -> None:
        """Stop every worker: graceful ``stop`` + join, or kill."""
        if not force:
            for worker in self.workers:
                if worker.process is None or worker.conn is None:
                    continue
                try:
                    worker.conn.send((MSG_STOP,))
                except (OSError, ValueError):
                    pass
            for worker in self.workers:
                if worker.process is not None:
                    worker.process.join(timeout=2.0)
        for worker in self.workers:
            if worker.process is not None:
                kill_process(worker.process)
            self._close(worker)


__all__ = [
    "DEFAULT_SHM_MIN",
    "ERR",
    "FAULT_ENV",
    "FAULT_STATE_ENV",
    "MSG_RUN",
    "MSG_STOP",
    "OK_INLINE",
    "OK_SHM",
    "PoolWorker",
    "SHM_MIN_ENV",
    "WorkerPool",
    "kill_process",
    "numa_nodes",
    "parse_cpulist",
    "plan_affinity",
    "plan_nodes",
    "result_payload",
    "shm_min_bytes",
]
