"""Fault-tolerant execution engine for simulation batches.

Reproducing the paper's figures takes hundreds of (config x workload)
runs.  One pathological point — an OOM-killed worker, a hang, a corrupt
cache entry — must not take hours of completed work with it.  This
module runs a batch of independent tasks with:

* **crash isolation** — tasks run in worker subprocesses; a segfault or
  OOM kill marks that task failed and the batch continues;
* **wall-clock timeouts** — a stuck worker is killed and reported as a
  ``timeout`` failure instead of wedging the whole sweep;
* **bounded retries** — transient failures are retried with exponential
  backoff plus deterministic jitter;
* **journaling + resume** — every state transition is appended to a
  JSONL journal (:mod:`repro.sim.journal`); a re-run with
  ``resume=True`` skips points already completed and re-runs only the
  rest;
* **structured failures** — a task that ultimately fails produces a
  :class:`FailureReport` (kind, exception type, traceback, config hash,
  attempt count) aggregated into the batch result instead of being
  swallowed or aborting the batch.

The serial in-process path (``jobs=1``, no timeout) executes tasks
exactly like a plain loop would, so results stay bit-identical to
runner-less execution; subprocess isolation is engaged only when
parallelism or a timeout is requested.

Isolated execution runs on the **persistent worker pool** of
:mod:`repro.sim.pool`: ``jobs`` long-lived subprocesses amortize
import/config cost across tasks, results come back over each worker's
pipe (escalating to shared memory for large payloads), and a worker
that dies or overruns its deadline only loses its own task — the pool
respawns a replacement in its slot, so a dying worker can never take
unrelated tasks down with it.  With ``pin=True`` the pool additionally
places workers round-robin across NUMA nodes with per-worker CPU
pinning (see ``docs/runner.md``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.obs.metrics import spec_for
from repro.obs.summary import summarize_result
from repro.obs.trace import (
    RUNNER_SPILL,
    SpanSpill,
    TraceContext,
    spans_dir_for,
)
from repro.sim import chaos
from repro.sim.journal import Journal
from repro.sim.pool import (
    ERR,
    FAULT_ENV as FAULT_ENV,  # re-export: the contract lives with the pool
    FAULT_STATE_ENV as FAULT_STATE_ENV,
    WorkerPool,
    _maybe_inject_fault,
    result_payload,
)

#: Failure kinds carried by :class:`FailureReport`.
KIND_EXCEPTION = "exception"  # the task raised
KIND_TIMEOUT = "timeout"      # the worker exceeded the wall-clock budget
KIND_CRASH = "crash"          # the worker died without reporting back
KIND_CRASH_LOOP = "crash_loop"  # a slot died so often the breaker opened

#: Default location for journals (CI uploads this directory on failure).
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

#: Upper bound on one event-wait while workers run; deadlines and
#: backoff wake-ups shorten it, results interrupt it immediately.
_MAX_WAIT_S = 0.5


def default_journal_dir() -> Path:
    return Path(os.environ.get(JOURNAL_DIR_ENV, ".repro-journal"))


def config_hash(config: Any) -> str:
    """Stable short hash of a configuration's repr (journal/report key)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def _stable_unit(text: str) -> float:
    """Deterministic value in [0, 1) independent of PYTHONHASHSEED."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RunnerPolicy:
    """Execution policy for a batch of tasks.

    The default policy (one job, no timeout) runs tasks serially
    in-process — the bit-identical legacy behaviour.  Any of ``jobs > 1``
    or a ``timeout_s`` switches the batch to subprocess isolation.
    """

    #: Maximum concurrent worker processes (1 = serial).
    jobs: int = 1
    #: Per-attempt wall-clock budget in seconds (None = unbounded).
    timeout_s: Optional[float] = None
    #: Retries after the first failed attempt (0 = one attempt only).
    retries: int = 0
    #: First retry delay; doubles per retry up to :attr:`backoff_max_s`.
    backoff_base_s: float = 0.5
    backoff_max_s: float = 30.0
    #: Fractional deterministic jitter added to each backoff delay.
    backoff_jitter: float = 0.1
    #: Seed for the backoff jitter (kept deterministic for replay).
    seed: int = 0
    #: True: a failed point is recorded and the batch continues.
    #: False (fail-fast): the first final failure cancels the rest.
    keep_going: bool = True
    #: JSONL journal path (None disables journaling and resume).
    journal_path: Optional[Union[str, Path]] = None
    #: Skip tasks whose key the journal records as completed.
    resume: bool = False
    #: Pin pool workers round-robin across NUMA nodes with per-worker
    #: CPU affinity (isolated path only; no-op where unsupported).
    pin: bool = False
    #: Crash-loop breaker: a worker slot that dies this many times
    #: *consecutively* (no completed task in between) fails the batch
    #: with a ``crash_loop`` FailureReport instead of respawning
    #: forever — regardless of ``keep_going``, because a slot that can
    #: never complete anything would otherwise burn retries on every
    #: remaining point.
    max_slot_crashes: int = 5
    #: Fsync journal appends and sidecar stores (power-loss durability;
    #: see ``docs/runner.md``).  Default off: flush-only already
    #: survives process crashes.
    fsync_journal: bool = False

    def validate(self) -> None:
        if self.jobs <= 0:
            raise ValueError("runner jobs must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("runner timeout must be positive")
        if self.retries < 0:
            raise ValueError("runner retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.backoff_jitter < 0:
            raise ValueError("backoff jitter cannot be negative")
        if self.resume and self.journal_path is None:
            raise ValueError("resume requires a journal path")
        if self.max_slot_crashes <= 0:
            raise ValueError("max_slot_crashes must be positive")

    @property
    def isolated(self) -> bool:
        """Whether tasks must run in worker subprocesses."""
        return self.jobs > 1 or self.timeout_s is not None

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before retry *attempt* (attempt 1 = first retry)."""
        base = min(
            self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        jitter = self.backoff_jitter * _stable_unit(
            f"{self.seed}:{key}:{attempt}"
        )
        return base * (1.0 + jitter)


@dataclass
class FailureReport:
    """Everything known about a task that ultimately failed."""

    key: str
    kind: str  # KIND_EXCEPTION | KIND_TIMEOUT | KIND_CRASH | KIND_CRASH_LOOP
    exception_type: str
    message: str
    traceback: str
    config_hash: str
    attempts: int
    elapsed_s: float

    def summary(self) -> str:
        return (
            f"{self.key}: {self.kind} after {self.attempts} attempt(s) "
            f"({self.exception_type}: {self.message})"
        )

    def to_record(self) -> dict:
        return {
            "kind": self.kind,
            "exception_type": self.exception_type,
            "message": self.message,
            "traceback": self.traceback,
            "config_hash": self.config_hash,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }


@dataclass(frozen=True)
class Task:
    """One unit of work: a picklable top-level callable plus arguments."""

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    config_hash: str = ""


@dataclass
class BatchResult:
    """Outcome of a batch: results, failures, and bookkeeping."""

    results: dict[str, Any] = field(default_factory=dict)
    failures: dict[str, FailureReport] = field(default_factory=dict)
    #: Keys skipped because the journal recorded them as completed.
    resumed: list[str] = field(default_factory=list)
    #: Keys never (re)started because fail-fast aborted the batch.
    cancelled: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.cancelled


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------

class _Telemetry:
    """Optional metric/event sink for runner lifecycle happenings.

    Wraps a :class:`repro.obs.registry.MetricsRegistry` (``runner.*``
    counters and ``pool.*`` gauges from the contract in
    :mod:`repro.obs.metrics`) and/or an ``Observability`` (retry trace
    events).  Every method is a cheap no-op when nothing was attached.
    """

    def __init__(self, registry, obs, on_event=None) -> None:
        self._obs = obs
        self._on_event = on_event
        #: The attached registry (also consumed by the result-digest
        #: path, which counts ``obs.digest_errors`` against it).
        self.registry = registry
        self._attempts = self._retries = self._failures = None
        self._pool_workers = self._pool_queue = self._pool_tasks = None
        if registry is not None:
            self._attempts = registry.register(spec_for("runner.attempts"))
            self._retries = registry.register(spec_for("runner.retries"))
            self._failures = registry.register(spec_for("runner.failures"))
            self._pool_workers = registry.register(spec_for("pool.workers"))
            self._pool_queue = registry.register(
                spec_for("pool.queue_depth")
            )
            self._pool_tasks = registry.register(spec_for("pool.tasks"))

    def attempt(self) -> None:
        if self._attempts is not None:
            self._attempts.inc()

    def retry(self, key: str, attempt: int, kind: str) -> None:
        if self._retries is not None:
            self._retries.inc()
        if self._obs is not None:
            self._obs.on_runner_retry(key, attempt, kind)

    def failure(self, kind: str) -> None:
        if self._failures is not None:
            self._failures.inc(kind=kind)

    def pool_task(self, worker: int) -> None:
        if self._pool_tasks is not None:
            self._pool_tasks.inc(worker=worker)

    def pool_state(self, workers_alive: int, queue_depth: int) -> None:
        if self._pool_workers is not None:
            self._pool_workers.set(workers_alive)
            self._pool_queue.set(queue_depth)

    def emit(self, kind: str, **data) -> None:
        """Forward one lifecycle event to the attached ``on_event``.

        The callback is observational (the serve event stream); a
        raising subscriber must never fail the batch.
        """
        if self._on_event is None:
            return
        try:
            self._on_event({"kind": kind, **data})
        except Exception:
            pass


def run_tasks(
    tasks: Sequence[Task],
    policy: RunnerPolicy,
    registry=None,
    obs=None,
    trace: Optional[TraceContext] = None,
    on_event: Optional[Callable[[dict], None]] = None,
) -> BatchResult:
    """Execute *tasks* under *policy*; never raises for task failures.

    *registry* (a :class:`repro.obs.registry.MetricsRegistry`) collects
    the ``runner.attempts`` / ``runner.retries`` / ``runner.failures``
    counters plus the pool gauges; *obs* (a
    :class:`repro.obs.Observability`) additionally receives
    ``runner.retry`` trace events (its registry is used when *registry*
    is not given).  Both are observational only — task scheduling,
    retries, and results are unaffected.

    *trace* (a :class:`repro.obs.TraceContext`) attaches distributed
    tracing (docs/tracing.md): every attempt gets a span in the
    journal-adjacent spans directory, the context is propagated over
    the pool wire protocol so workers spill their own ``task`` spans,
    and the journal ``meta`` record carries the trace id.  Requires a
    journal (the spans directory lives next to it); silently off
    otherwise.  *on_event* receives one dict per point completion
    (``point.done`` / ``point.failed``) — the serve event stream's
    feed.  Both are observational: results stay byte-identical with
    tracing on or off.
    """
    policy.validate()
    if registry is None and obs is not None:
        registry = obs.registry
    telem = _Telemetry(registry, obs, on_event)
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique within a batch")

    # A chaos engine armed via the environment (docs/chaos.md) counts
    # its parent-side injections against this batch's registry.
    chaos.attach_registry(registry)
    journal = (
        Journal(
            policy.journal_path,
            fsync=True if policy.fsync_journal else None,
            registry=registry,
        )
        if policy.journal_path else None
    )
    spans_dir = None
    spill = None
    if trace is not None and journal is not None:
        spans_dir = spans_dir_for(journal.path)
        spill = SpanSpill(spans_dir / RUNNER_SPILL)
        spill_base = _spill_totals(spans_dir)
    if journal is not None:
        # Tmp sidecars orphaned by a SIGKILL mid-store (unique names,
        # so they can pile up across crashed batches) are swept here,
        # at batch start — never from store_result, whose concurrent
        # writers must not touch each other's live tmp files.
        journal.sweep_orphans()
        # Stamp the batch with its environment fingerprint (code
        # version, git sha, python) so report/regression tooling can
        # validate the provenance of every journalled digest.
        from repro.obs.baseline import environment_fingerprint

        journal.append("meta", "", fingerprint=environment_fingerprint(
            trace_id=trace.trace_id if trace is not None else None,
        ))
    batch = BatchResult()
    todo: list[Task] = []
    if policy.resume and journal is not None:
        done = journal.completed_keys()
        for task in tasks:
            if task.key in done:
                result = journal.load_result(task.key)
                if result is not None:
                    batch.results[task.key] = result
                    batch.resumed.append(task.key)
                    continue
            todo.append(task)
    else:
        todo = list(tasks)

    try:
        if policy.isolated:
            _run_isolated(todo, policy, journal, batch, telem,
                          trace=trace, spill=spill, spans_dir=spans_dir)
        else:
            _run_inline(todo, policy, journal, batch, telem,
                        trace=trace, spill=spill)
    finally:
        if spill is not None:
            spill.close()
            _account_spill(registry, spans_dir, spill_base, spill.dropped)
    # Pooled attempts land in completion order, which varies run to run;
    # re-key into submission order so a batch's outcome is byte-identical
    # regardless of jobs/pin/scheduling.
    order = {t.key: i for i, t in enumerate(tasks)}
    batch.results = {
        t.key: batch.results[t.key] for t in tasks if t.key in batch.results
    }
    batch.failures = {
        t.key: batch.failures[t.key]
        for t in tasks
        if t.key in batch.failures
    }
    batch.cancelled.sort(key=order.__getitem__)
    return batch


def _spill_totals(spans_dir: Path) -> dict[str, tuple[int, int]]:
    """Per-file ``(records, bytes)`` snapshot of a spans directory.

    Taken before and after a traced batch so the ``trace.spans`` /
    ``trace.spill_bytes`` counters reflect this batch only, even when
    the journal (and its spans directory) is reused across batches.
    """
    totals: dict[str, tuple[int, int]] = {}
    if not spans_dir.is_dir():
        return totals
    for path in sorted(spans_dir.glob("*.jsonl")):
        try:
            data = path.read_bytes()
        except OSError:
            continue
        totals[path.name] = (data.count(b"\n"), len(data))
    return totals


def _account_spill(registry, spans_dir, base: dict, dropped: int) -> None:
    """Credit this batch's span records/bytes to the trace counters."""
    if registry is None or spans_dir is None:
        return
    spans = bytes_written = 0
    for name, (records, size) in _spill_totals(spans_dir).items():
        prev_records, prev_size = base.get(name, (0, 0))
        spans += max(0, records - prev_records)
        bytes_written += max(0, size - prev_size)
    if spans:
        registry.register(spec_for("trace.spans")).inc(spans)
    if bytes_written:
        registry.register(spec_for("trace.spill_bytes")).inc(bytes_written)
    if dropped:
        registry.register(spec_for("trace.dropped_spans")).inc(dropped)


def _record_success(
    batch: BatchResult,
    journal: Optional[Journal],
    task: Task,
    result: Any,
    attempt: int,
    elapsed_s: float,
    telem: Optional["_Telemetry"] = None,
) -> None:
    batch.results[task.key] = result
    if journal is not None:
        journal.store_result(task.key, result)
        # RunResult-shaped outcomes enrich the done record with a compact
        # metric digest (rdc.hit, link.bytes, ...) for journal greps.
        # Digest failures are counted (obs.digest_errors) not swallowed.
        metrics = summarize_result(
            result, registry=telem.registry if telem is not None else None
        )
        extra = {"metrics": metrics} if metrics is not None else {}
        journal.append(
            "done", task.key, attempt=attempt, elapsed_s=elapsed_s,
            config_hash=task.config_hash, **extra,
        )
    if telem is not None:
        telem.emit("point.done", key=task.key, attempt=attempt,
                   elapsed_s=elapsed_s)


def _record_failure(
    batch: BatchResult,
    journal: Optional[Journal],
    task: Task,
    report: FailureReport,
    telem: Optional["_Telemetry"] = None,
) -> None:
    batch.failures[task.key] = report
    if journal is not None:
        journal.append("failed", task.key, **report.to_record())
    if telem is not None:
        telem.emit("point.failed", key=task.key,
                   failure_kind=report.kind, attempts=report.attempts)


def _run_inline(
    todo: list[Task],
    policy: RunnerPolicy,
    journal: Optional[Journal],
    batch: BatchResult,
    telem: _Telemetry,
    trace: Optional[TraceContext] = None,
    spill: Optional[SpanSpill] = None,
) -> None:
    """Serial in-process execution (the bit-identical default path)."""
    for i, task in enumerate(todo):
        attempt = 1
        started = time.perf_counter()
        while True:
            if journal is not None:
                journal.append("start", task.key, attempt=attempt)
            ctx = None
            if trace is not None and spill is not None:
                ctx = trace.child(f"attempt:{task.key}#{attempt}")
                spill.span_begin(ctx, "attempt", key=task.key,
                                 attempt=attempt, slot=-1)
            telem.attempt()
            try:
                _maybe_inject_fault(task.key)
                result = task.fn(*task.args)
            except Exception as exc:
                if attempt <= policy.retries:
                    delay = policy.backoff_s(task.key, attempt)
                    if journal is not None:
                        journal.append(
                            "retry", task.key, attempt=attempt,
                            kind=KIND_EXCEPTION,
                            exception_type=type(exc).__name__,
                            message=str(exc), backoff_s=delay,
                        )
                    if ctx is not None:
                        spill.span_end(ctx, "attempt", key=task.key,
                                       attempt=attempt, status="retry")
                    telem.retry(task.key, attempt, KIND_EXCEPTION)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                report = FailureReport(
                    key=task.key, kind=KIND_EXCEPTION,
                    exception_type=type(exc).__name__, message=str(exc),
                    traceback=traceback.format_exc(),
                    config_hash=task.config_hash, attempts=attempt,
                    elapsed_s=time.perf_counter() - started,
                )
                if ctx is not None:
                    spill.span_end(ctx, "attempt", key=task.key,
                                   attempt=attempt, status="error")
                _record_failure(batch, journal, task, report, telem)
                telem.failure(KIND_EXCEPTION)
                if not policy.keep_going:
                    batch.cancelled.extend(t.key for t in todo[i + 1:])
                    return
                break
            else:
                if ctx is not None:
                    spill.span_end(ctx, "attempt", key=task.key,
                                   attempt=attempt, status="ok")
                _record_success(
                    batch, journal, task, result, attempt,
                    time.perf_counter() - started, telem,
                )
                break


@dataclass
class _Running:
    """One in-flight attempt (owned by the worker slot running it).

    All times are ``time.monotonic()`` — the isolated path uses exactly
    one clock domain, so ``elapsed_s`` and deadline checks can never
    skew against each other.
    """

    task: Task
    attempt: int
    started: float
    deadline: Optional[float]
    first_started: float
    #: This attempt's trace context (None when tracing is off).
    ctx: Optional[TraceContext] = None


def _run_isolated(
    todo: list[Task],
    policy: RunnerPolicy,
    journal: Optional[Journal],
    batch: BatchResult,
    telem: _Telemetry,
    trace: Optional[TraceContext] = None,
    spill: Optional[SpanSpill] = None,
    spans_dir: Optional[Path] = None,
) -> None:
    """Crash-isolated execution on the persistent worker pool."""
    if not todo:
        return
    pool = WorkerPool(min(policy.jobs, len(todo)), pin=policy.pin,
                      trace_dir=spans_dir)
    #: (task, attempt, eligible_at, first_started) awaiting a worker slot.
    pending: deque = deque((t, 1, 0.0, None) for t in todo)
    #: worker index -> the attempt it is currently executing.
    inflight: dict[int, _Running] = {}
    stop = False

    def end_span(entry: _Running, status: str) -> None:
        if spill is not None and entry.ctx is not None:
            spill.span_end(entry.ctx, "attempt", key=entry.task.key,
                           attempt=entry.attempt, status=status)

    def finish_failure(entry: _Running, kind: str, exc_type: str,
                       message: str, tb: str) -> None:
        nonlocal stop
        if entry.attempt <= policy.retries:
            delay = policy.backoff_s(entry.task.key, entry.attempt)
            if journal is not None:
                journal.append(
                    "retry", entry.task.key, attempt=entry.attempt,
                    kind=kind, exception_type=exc_type, message=message,
                    backoff_s=delay,
                )
            pending.append((
                entry.task, entry.attempt + 1,
                time.monotonic() + delay, entry.first_started,
            ))
            telem.retry(entry.task.key, entry.attempt, kind)
            return
        report = FailureReport(
            key=entry.task.key, kind=kind, exception_type=exc_type,
            message=message, traceback=tb,
            config_hash=entry.task.config_hash, attempts=entry.attempt,
            elapsed_s=time.monotonic() - entry.first_started,
        )
        _record_failure(batch, journal, entry.task, report, telem)
        telem.failure(kind)
        if not policy.keep_going:
            stop = True

    pool.start()
    try:
        while pending or inflight:
            if stop:
                # Fail-fast: cancel in-flight and queued work alike; the
                # finally-block force-shutdown kills the busy workers.
                for e in inflight.values():
                    end_span(e, "cancelled")
                batch.cancelled.extend(
                    e.task.key for e in inflight.values()
                )
                batch.cancelled.extend(t.key for t, *_ in pending)
                inflight.clear()
                pending.clear()
                break

            now = time.monotonic()
            # Dispatch eligible tasks onto idle workers.
            for worker in pool.workers:
                if not pending:
                    break
                if worker.index in inflight or not worker.alive:
                    continue
                picked = None
                for _ in range(len(pending)):
                    candidate = pending.popleft()
                    if candidate[2] > now:
                        pending.append(candidate)
                        continue
                    picked = candidate
                    break
                if picked is None:
                    break  # everything queued is still backing off
                task, attempt, _eligible, first = picked
                ctx = None
                span_wire = None
                if trace is not None and spill is not None:
                    ctx = trace.child(f"attempt:{task.key}#{attempt}")
                    span_wire = ctx.to_wire()
                if not pool.dispatch(worker, task.key, task.fn, task.args,
                                     span=span_wire):
                    # The slot died between batches; one respawn, then
                    # requeue rather than risk a hot loop.
                    pool.respawn(worker)
                    if not pool.dispatch(
                        worker, task.key, task.fn, task.args,
                        span=span_wire,
                    ):
                        pending.append((task, attempt, _eligible, first))
                        continue
                started = time.monotonic()
                inflight[worker.index] = _Running(
                    task=task, attempt=attempt, started=started,
                    deadline=(started + policy.timeout_s
                              if policy.timeout_s is not None else None),
                    first_started=first if first is not None else started,
                    ctx=ctx,
                )
                if journal is not None:
                    journal.append("start", task.key, attempt=attempt)
                if ctx is not None:
                    spill.span_begin(ctx, "attempt", key=task.key,
                                     attempt=attempt, slot=worker.index,
                                     node=worker.node)
                telem.attempt()
                telem.pool_task(worker.index)
            telem.pool_state(pool.alive_count(), len(pending))

            # Wait for results/crashes, bounded by the nearest deadline
            # or backoff wake-up.
            now = time.monotonic()
            wait_s = _MAX_WAIT_S
            for entry in inflight.values():
                if entry.deadline is not None:
                    wait_s = min(wait_s, entry.deadline - now)
            if not inflight and pending:
                wake = min(item[2] for item in pending)
                wait_s = min(wait_s, wake - now)
            for kind, worker, data in pool.events(max(0.0, wait_s)):
                entry = inflight.pop(worker.index, None)
                if kind == "result":
                    if entry is None:
                        continue  # stale reply from a cancelled slot
                    message = data
                    if message[0] == ERR:
                        _, exc_type, msg, tb = message
                        end_span(entry, "error")
                        finish_failure(
                            entry, KIND_EXCEPTION, exc_type, msg, tb
                        )
                        continue
                    try:
                        result = pickle.loads(result_payload(message))
                    except Exception as exc:
                        end_span(entry, "error")
                        finish_failure(
                            entry, KIND_EXCEPTION, type(exc).__name__,
                            f"result transport failed: {exc}",
                            traceback.format_exc(),
                        )
                    else:
                        end_span(entry, "ok")
                        _record_success(
                            batch, journal, entry.task, result,
                            entry.attempt,
                            time.monotonic() - entry.first_started,
                            telem,
                        )
                else:  # died: segfault, OOM kill, os._exit — crash case
                    if entry is not None:
                        end_span(entry, "crash")
                        code = data
                        detail = (
                            f"killed by signal {-code}" if code is not None
                            and code < 0 else f"exit code {code}"
                        )
                        if worker.consecutive_deaths >= \
                                policy.max_slot_crashes:
                            # Crash-loop breaker: this slot has died
                            # max_slot_crashes times without completing
                            # anything.  Respawning again would burn the
                            # whole batch through the same shredder, so
                            # fail it now with the diagnosis — even
                            # under keep_going.
                            report = FailureReport(
                                key=entry.task.key, kind=KIND_CRASH_LOOP,
                                exception_type="CrashLoop",
                                message=(
                                    f"worker slot {worker.index} died "
                                    f"{worker.consecutive_deaths} times "
                                    f"in a row without completing a task "
                                    f"(last: {detail}); breaker opened — "
                                    f"failing the batch"
                                ),
                                traceback="",
                                config_hash=entry.task.config_hash,
                                attempts=entry.attempt,
                                elapsed_s=(
                                    time.monotonic() - entry.first_started
                                ),
                            )
                            _record_failure(batch, journal, entry.task,
                                            report, telem)
                            telem.failure(KIND_CRASH_LOOP)
                            stop = True
                            continue
                        finish_failure(
                            entry, KIND_CRASH, "WorkerCrash",
                            f"worker died without a result ({detail})", "",
                        )
                    if pending or inflight:
                        pool.respawn(worker)
                    else:
                        pool.reap(worker)

            # Deadline enforcement: kill overrunning workers, replace
            # them if there is more work to run.
            if policy.timeout_s is not None:
                now = time.monotonic()
                for index, entry in list(inflight.items()):
                    if entry.deadline is None or now < entry.deadline:
                        continue
                    del inflight[index]
                    worker = pool.workers[index]
                    if pending or inflight:
                        pool.restart_worker(worker)
                    else:
                        pool.kill_worker(worker)
                    end_span(entry, "timeout")
                    finish_failure(
                        entry, KIND_TIMEOUT, "WorkerTimeout",
                        f"worker exceeded {policy.timeout_s:g}s "
                        f"wall-clock budget", "",
                    )
    finally:
        pool.shutdown(force=stop)
        telem.pool_state(0, len(pending))
