"""Fault-tolerant execution engine for simulation batches.

Reproducing the paper's figures takes hundreds of (config x workload)
runs.  One pathological point — an OOM-killed worker, a hang, a corrupt
cache entry — must not take hours of completed work with it.  This
module runs a batch of independent tasks with:

* **crash isolation** — each task runs in its own worker subprocess; a
  segfault or OOM kill marks that task failed and the batch continues;
* **wall-clock timeouts** — a stuck worker is killed and reported as a
  ``timeout`` failure instead of wedging the whole sweep;
* **bounded retries** — transient failures are retried with exponential
  backoff plus deterministic jitter;
* **journaling + resume** — every state transition is appended to a
  JSONL journal (:mod:`repro.sim.journal`); a re-run with
  ``resume=True`` skips points already completed and re-runs only the
  rest;
* **structured failures** — a task that ultimately fails produces a
  :class:`FailureReport` (kind, exception type, traceback, config hash,
  attempt count) aggregated into the batch result instead of being
  swallowed or aborting the batch.

The serial in-process path (``jobs=1``, no timeout) executes tasks
exactly like a plain loop would, so results stay bit-identical to
runner-less execution; subprocess isolation is engaged only when
parallelism or a timeout is requested.

Workers are plain ``multiprocessing`` processes (fork where available,
spawn otherwise) with one process per attempt: there is no long-lived
pool to poison, so a dying worker can never take unrelated tasks down
with it.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.obs.metrics import spec_for
from repro.obs.summary import summarize_result
from repro.sim.journal import Journal

#: Failure kinds carried by :class:`FailureReport`.
KIND_EXCEPTION = "exception"  # the task raised
KIND_TIMEOUT = "timeout"      # the worker exceeded the wall-clock budget
KIND_CRASH = "crash"          # the worker died without reporting back

#: Fault-injection hook for exercising this harness itself (tests, CI
#: drills).  Format ``"<mode>:<key-substring>"`` where mode is one of
#: ``fail`` (raise), ``crash`` (SIGKILL self), ``hang`` (sleep forever),
#: ``flaky`` (raise on the first attempt only, using a sentinel file
#: under ``REPRO_INJECT_FAULT_STATE``).  Affects only tasks whose key
#: contains the substring; an empty substring matches every task.
FAULT_ENV = "REPRO_INJECT_FAULT"
FAULT_STATE_ENV = "REPRO_INJECT_FAULT_STATE"

#: Default location for journals (CI uploads this directory on failure).
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

#: Parent poll period while workers run.  Small enough that sub-second
#: timeouts are honoured, large enough not to busy-spin.
_POLL_S = 0.02


def default_journal_dir() -> Path:
    return Path(os.environ.get(JOURNAL_DIR_ENV, ".repro-journal"))


def config_hash(config: Any) -> str:
    """Stable short hash of a configuration's repr (journal/report key)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def _stable_unit(text: str) -> float:
    """Deterministic value in [0, 1) independent of PYTHONHASHSEED."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RunnerPolicy:
    """Execution policy for a batch of tasks.

    The default policy (one job, no timeout) runs tasks serially
    in-process — the bit-identical legacy behaviour.  Any of ``jobs > 1``
    or a ``timeout_s`` switches the batch to subprocess isolation.
    """

    #: Maximum concurrent worker processes (1 = serial).
    jobs: int = 1
    #: Per-attempt wall-clock budget in seconds (None = unbounded).
    timeout_s: Optional[float] = None
    #: Retries after the first failed attempt (0 = one attempt only).
    retries: int = 0
    #: First retry delay; doubles per retry up to :attr:`backoff_max_s`.
    backoff_base_s: float = 0.5
    backoff_max_s: float = 30.0
    #: Fractional deterministic jitter added to each backoff delay.
    backoff_jitter: float = 0.1
    #: Seed for the backoff jitter (kept deterministic for replay).
    seed: int = 0
    #: True: a failed point is recorded and the batch continues.
    #: False (fail-fast): the first final failure cancels the rest.
    keep_going: bool = True
    #: JSONL journal path (None disables journaling and resume).
    journal_path: Optional[Union[str, Path]] = None
    #: Skip tasks whose key the journal records as completed.
    resume: bool = False

    def validate(self) -> None:
        if self.jobs <= 0:
            raise ValueError("runner jobs must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("runner timeout must be positive")
        if self.retries < 0:
            raise ValueError("runner retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.backoff_jitter < 0:
            raise ValueError("backoff jitter cannot be negative")
        if self.resume and self.journal_path is None:
            raise ValueError("resume requires a journal path")

    @property
    def isolated(self) -> bool:
        """Whether tasks must run in worker subprocesses."""
        return self.jobs > 1 or self.timeout_s is not None

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before retry *attempt* (attempt 1 = first retry)."""
        base = min(
            self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        jitter = self.backoff_jitter * _stable_unit(
            f"{self.seed}:{key}:{attempt}"
        )
        return base * (1.0 + jitter)


@dataclass
class FailureReport:
    """Everything known about a task that ultimately failed."""

    key: str
    kind: str  # KIND_EXCEPTION | KIND_TIMEOUT | KIND_CRASH
    exception_type: str
    message: str
    traceback: str
    config_hash: str
    attempts: int
    elapsed_s: float

    def summary(self) -> str:
        return (
            f"{self.key}: {self.kind} after {self.attempts} attempt(s) "
            f"({self.exception_type}: {self.message})"
        )

    def to_record(self) -> dict:
        return {
            "kind": self.kind,
            "exception_type": self.exception_type,
            "message": self.message,
            "traceback": self.traceback,
            "config_hash": self.config_hash,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }


@dataclass(frozen=True)
class Task:
    """One unit of work: a picklable top-level callable plus arguments."""

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    config_hash: str = ""


@dataclass
class BatchResult:
    """Outcome of a batch: results, failures, and bookkeeping."""

    results: dict[str, Any] = field(default_factory=dict)
    failures: dict[str, FailureReport] = field(default_factory=dict)
    #: Keys skipped because the journal recorded them as completed.
    resumed: list[str] = field(default_factory=list)
    #: Keys never (re)started because fail-fast aborted the batch.
    cancelled: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.cancelled


# ---------------------------------------------------------------------------
# Fault injection (testing the harness itself)
# ---------------------------------------------------------------------------

def _maybe_inject_fault(key: str) -> None:
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    mode, _, match = spec.partition(":")
    if match and match not in key:
        return
    if mode == "fail":
        raise RuntimeError(f"injected failure for {key!r}")
    if mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        time.sleep(3600)
    if mode == "flaky":
        state_dir = Path(os.environ.get(FAULT_STATE_ENV, "."))
        sentinel = state_dir / (
            hashlib.sha256(key.encode()).hexdigest()[:24] + ".flaky"
        )
        if not sentinel.exists():
            state_dir.mkdir(parents=True, exist_ok=True)
            sentinel.touch()
            raise RuntimeError(f"injected flaky failure for {key!r}")


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------

class _Telemetry:
    """Optional metric/event sink for runner lifecycle happenings.

    Wraps a :class:`repro.obs.registry.MetricsRegistry` (``runner.*``
    counters from the contract in :mod:`repro.obs.metrics`) and/or an
    ``Observability`` (retry trace events).  Every method is a cheap
    no-op when nothing was attached.
    """

    def __init__(self, registry, obs) -> None:
        self._obs = obs
        #: The attached registry (also consumed by the result-digest
        #: path, which counts ``obs.digest_errors`` against it).
        self.registry = registry
        self._attempts = self._retries = self._failures = None
        if registry is not None:
            self._attempts = registry.register(spec_for("runner.attempts"))
            self._retries = registry.register(spec_for("runner.retries"))
            self._failures = registry.register(spec_for("runner.failures"))

    def attempt(self) -> None:
        if self._attempts is not None:
            self._attempts.inc()

    def retry(self, key: str, attempt: int, kind: str) -> None:
        if self._retries is not None:
            self._retries.inc()
        if self._obs is not None:
            self._obs.on_runner_retry(key, attempt, kind)

    def failure(self, kind: str) -> None:
        if self._failures is not None:
            self._failures.inc(kind=kind)


def run_tasks(
    tasks: Sequence[Task],
    policy: RunnerPolicy,
    registry=None,
    obs=None,
) -> BatchResult:
    """Execute *tasks* under *policy*; never raises for task failures.

    *registry* (a :class:`repro.obs.registry.MetricsRegistry`) collects
    the ``runner.attempts`` / ``runner.retries`` / ``runner.failures``
    counters; *obs* (a :class:`repro.obs.Observability`) additionally
    receives ``runner.retry`` trace events (its registry is used when
    *registry* is not given).  Both are observational only — task
    scheduling, retries, and results are unaffected.
    """
    policy.validate()
    if registry is None and obs is not None:
        registry = obs.registry
    telem = _Telemetry(registry, obs)
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique within a batch")

    journal = Journal(policy.journal_path) if policy.journal_path else None
    if journal is not None:
        # Stamp the batch with its environment fingerprint (code
        # version, git sha, python) so report/regression tooling can
        # validate the provenance of every journalled digest.
        from repro.obs.baseline import environment_fingerprint

        journal.append("meta", "", fingerprint=environment_fingerprint())
    batch = BatchResult()
    todo: list[Task] = []
    if policy.resume and journal is not None:
        done = journal.completed_keys()
        for task in tasks:
            if task.key in done:
                result = journal.load_result(task.key)
                if result is not None:
                    batch.results[task.key] = result
                    batch.resumed.append(task.key)
                    continue
            todo.append(task)
    else:
        todo = list(tasks)

    if policy.isolated:
        _run_isolated(todo, policy, journal, batch, telem)
    else:
        _run_inline(todo, policy, journal, batch, telem)
    return batch


def _record_success(
    batch: BatchResult,
    journal: Optional[Journal],
    task: Task,
    result: Any,
    attempt: int,
    elapsed_s: float,
    telem: Optional["_Telemetry"] = None,
) -> None:
    batch.results[task.key] = result
    if journal is not None:
        journal.store_result(task.key, result)
        # RunResult-shaped outcomes enrich the done record with a compact
        # metric digest (rdc.hit, link.bytes, ...) for journal greps.
        # Digest failures are counted (obs.digest_errors) not swallowed.
        metrics = summarize_result(
            result, registry=telem.registry if telem is not None else None
        )
        extra = {"metrics": metrics} if metrics is not None else {}
        journal.append(
            "done", task.key, attempt=attempt, elapsed_s=elapsed_s,
            config_hash=task.config_hash, **extra,
        )


def _record_failure(
    batch: BatchResult,
    journal: Optional[Journal],
    task: Task,
    report: FailureReport,
) -> None:
    batch.failures[task.key] = report
    if journal is not None:
        journal.append("failed", task.key, **report.to_record())


def _run_inline(
    todo: list[Task],
    policy: RunnerPolicy,
    journal: Optional[Journal],
    batch: BatchResult,
    telem: _Telemetry,
) -> None:
    """Serial in-process execution (the bit-identical default path)."""
    for i, task in enumerate(todo):
        attempt = 1
        started = time.perf_counter()
        while True:
            if journal is not None:
                journal.append("start", task.key, attempt=attempt)
            telem.attempt()
            try:
                _maybe_inject_fault(task.key)
                result = task.fn(*task.args)
            except Exception as exc:
                if attempt <= policy.retries:
                    delay = policy.backoff_s(task.key, attempt)
                    if journal is not None:
                        journal.append(
                            "retry", task.key, attempt=attempt,
                            kind=KIND_EXCEPTION,
                            exception_type=type(exc).__name__,
                            message=str(exc), backoff_s=delay,
                        )
                    telem.retry(task.key, attempt, KIND_EXCEPTION)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                report = FailureReport(
                    key=task.key, kind=KIND_EXCEPTION,
                    exception_type=type(exc).__name__, message=str(exc),
                    traceback=traceback.format_exc(),
                    config_hash=task.config_hash, attempts=attempt,
                    elapsed_s=time.perf_counter() - started,
                )
                _record_failure(batch, journal, task, report)
                telem.failure(KIND_EXCEPTION)
                if not policy.keep_going:
                    batch.cancelled.extend(t.key for t in todo[i + 1:])
                    return
                break
            else:
                _record_success(
                    batch, journal, task, result, attempt,
                    time.perf_counter() - started, telem,
                )
                break


def _child_main(task: Task, conn) -> None:
    """Worker-subprocess entry: run the task, report through the pipe."""
    try:
        _maybe_inject_fault(task.key)
        result = task.fn(*task.args)
        payload = ("ok", pickle.dumps(result, pickle.HIGHEST_PROTOCOL))
    except BaseException as exc:  # report SystemExit and friends too
        payload = (
            "error", type(exc).__name__, str(exc), traceback.format_exc()
        )
    try:
        conn.send(payload)
    except Exception:
        pass  # parent gone or pipe broken; exit code tells the story
    finally:
        conn.close()


@dataclass
class _Running:
    task: Task
    attempt: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]
    first_started: float


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _run_isolated(
    todo: list[Task],
    policy: RunnerPolicy,
    journal: Optional[Journal],
    batch: BatchResult,
    telem: _Telemetry,
) -> None:
    """Crash-isolated execution: one worker subprocess per attempt."""
    ctx = _mp_context()
    #: (task, attempt, eligible_at, first_started) awaiting a worker slot.
    pending: deque = deque((t, 1, 0.0, None) for t in todo)
    running: list[_Running] = []
    stop = False

    def finish_failure(entry: _Running, kind: str, exc_type: str,
                       message: str, tb: str) -> None:
        nonlocal stop
        if entry.attempt <= policy.retries:
            delay = policy.backoff_s(entry.task.key, entry.attempt)
            if journal is not None:
                journal.append(
                    "retry", entry.task.key, attempt=entry.attempt,
                    kind=kind, exception_type=exc_type, message=message,
                    backoff_s=delay,
                )
            pending.append((
                entry.task, entry.attempt + 1,
                time.monotonic() + delay, entry.first_started,
            ))
            telem.retry(entry.task.key, entry.attempt, kind)
            return
        report = FailureReport(
            key=entry.task.key, kind=kind, exception_type=exc_type,
            message=message, traceback=tb,
            config_hash=entry.task.config_hash, attempts=entry.attempt,
            elapsed_s=time.perf_counter() - entry.first_started,
        )
        _record_failure(batch, journal, entry.task, report)
        telem.failure(kind)
        if not policy.keep_going:
            stop = True

    while pending or running:
        if stop:
            # Fail-fast: kill in-flight workers, cancel everything queued.
            for entry in running:
                _kill(entry.process)
                batch.cancelled.append(entry.task.key)
            batch.cancelled.extend(t.key for t, *_ in pending)
            running.clear()
            pending.clear()
            break

        now = time.monotonic()
        # Launch eligible tasks into free worker slots.
        launched = True
        while launched and len(running) < policy.jobs and pending:
            launched = False
            for _ in range(len(pending)):
                task, attempt, eligible_at, first = pending.popleft()
                if eligible_at > now:
                    pending.append((task, attempt, eligible_at, first))
                    continue
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_child_main, args=(task, child_conn), daemon=True
                )
                process.start()
                child_conn.close()
                started = time.perf_counter()
                running.append(_Running(
                    task=task, attempt=attempt, process=process,
                    conn=parent_conn, started=now,
                    deadline=(now + policy.timeout_s
                              if policy.timeout_s is not None else None),
                    first_started=first if first is not None else started,
                ))
                if journal is not None:
                    journal.append("start", task.key, attempt=attempt)
                telem.attempt()
                launched = True
                break

        progressed = False
        now = time.monotonic()
        for entry in list(running):
            message = None
            if entry.conn.poll():
                try:
                    message = entry.conn.recv()
                except (EOFError, OSError):
                    message = None  # died mid-send: handled as a crash
            if message is not None:
                running.remove(entry)
                progressed = True
                entry.process.join(timeout=10.0)
                entry.conn.close()
                if message[0] == "ok":
                    try:
                        result = pickle.loads(message[1])
                    except Exception as exc:
                        finish_failure(
                            entry, KIND_EXCEPTION, type(exc).__name__,
                            f"result unpickling failed: {exc}",
                            traceback.format_exc(),
                        )
                    else:
                        _record_success(
                            batch, journal, entry.task, result,
                            entry.attempt,
                            time.perf_counter() - entry.first_started,
                            telem,
                        )
                else:
                    _, exc_type, msg, tb = message
                    finish_failure(entry, KIND_EXCEPTION, exc_type, msg, tb)
            elif not entry.process.is_alive():
                # Worker died without reporting back: segfault, OOM kill,
                # os._exit — the crash-isolation case.
                running.remove(entry)
                progressed = True
                entry.process.join()
                entry.conn.close()
                code = entry.process.exitcode
                detail = (
                    f"killed by signal {-code}" if code is not None and
                    code < 0 else f"exit code {code}"
                )
                finish_failure(
                    entry, KIND_CRASH, "WorkerCrash",
                    f"worker died without a result ({detail})", "",
                )
            elif entry.deadline is not None and now >= entry.deadline:
                running.remove(entry)
                progressed = True
                _kill(entry.process)
                entry.conn.close()
                finish_failure(
                    entry, KIND_TIMEOUT, "WorkerTimeout",
                    f"worker exceeded {policy.timeout_s:g}s wall-clock "
                    f"budget", "",
                )

        if not progressed and running:
            time.sleep(_POLL_S)
        elif not running and pending:
            # Everything queued is backing off; sleep until eligible.
            wake = min(item[2] for item in pending)
            time.sleep(max(0.0, min(wake - time.monotonic(), 0.5)))


def _kill(process) -> None:
    """Terminate a worker, escalating to SIGKILL if it ignores SIGTERM."""
    if not process.is_alive():
        process.join()
        return
    process.terminate()
    process.join(timeout=2.0)
    if process.is_alive():
        process.kill()
        process.join()
