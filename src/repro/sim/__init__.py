"""sim subpackage of the CARVE reproduction."""
