"""System configuration for the multi-GPU NUMA simulator.

All capacities are expressed in *real* units (bytes, bytes/second) matching
Table III of the paper.  A :class:`Scale` divides capacities and footprints
uniformly so that simulations complete in seconds while preserving every
ratio that governs NUMA behaviour (shared-footprint/LLC, RDC/footprint,
lines-per-page, link-BW/local-BW).

The cache line is the simulator's unit of data and is *never* scaled:
addresses handled by the simulator are line numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

#: Cache line size in bytes (Table III: 128 B lines).  Never scaled.
LINE_BYTES = 128

#: Bytes of request/command overhead per remote transaction on a link.
LINK_HEADER_BYTES = 32

#: Bytes of a coherence control message (write-invalidate broadcast).
INVALIDATE_MSG_BYTES = 16

#: Default capacity scale factor.  2 MB pages become 2 KB (16 lines), the
#: per-GPU 8 MB LLC slice becomes 8 KB (64 lines), a 2 GB RDC becomes
#: 2 MB (16 Ki lines).
DEFAULT_SCALE = 1024


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass(frozen=True)
class GpuConfig:
    """Per-GPU compute and on-chip cache parameters (Pascal-like)."""

    n_sms: int = 64
    warps_per_sm: int = 64
    ipc_per_sm: float = 1.0
    freq_hz: float = 1.0e9
    #: Aggregate L1 capacity across all SMs (64 SMs x 128 KB).
    l1_bytes: int = 64 * 128 * 1024
    l1_ways: int = 4
    #: Per-GPU slice of the shared LLC (32 MB total / 4 GPUs).
    l2_bytes: int = 8 * 2**20
    l2_ways: int = 16
    l2_hit_latency_ns: float = 30.0

    def validate(self) -> None:
        if self.n_sms <= 0 or self.warps_per_sm <= 0:
            raise ConfigError("GPU must have positive SM and warp counts")
        if self.ipc_per_sm <= 0 or self.freq_hz <= 0:
            raise ConfigError("GPU throughput parameters must be positive")
        if self.l1_bytes <= 0 or self.l2_bytes <= 0:
            raise ConfigError("cache capacities must be positive")
        if self.l1_ways <= 0 or self.l2_ways <= 0:
            raise ConfigError("cache associativities must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Local GPU memory (HBM) parameters."""

    capacity_bytes: int = 32 * 2**30
    bandwidth_bytes_per_s: float = 1.0e12
    n_channels: int = 32
    banks_per_channel: int = 16
    row_bytes: int = 2 * 1024
    row_hit_latency_ns: float = 160.0
    row_miss_latency_ns: float = 320.0
    read_queue_entries: int = 128
    write_queue_entries: int = 128

    def validate(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("memory capacity must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("memory bandwidth must be positive")
        if self.n_channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError("memory geometry must be positive")
        if self.row_bytes < LINE_BYTES:
            raise ConfigError("a DRAM row must hold at least one line")


#: Interconnect topologies.
TOPOLOGY_P2P = "p2p"        # dedicated point-to-point link per GPU pair
TOPOLOGY_SWITCH = "switch"  # NVSwitch-style fabric, one port per GPU


@dataclass(frozen=True)
class LinkConfig:
    """Inter-GPU and CPU-GPU interconnect parameters (NVLink-like).

    Two topologies are modelled.  Under ``p2p`` every ordered GPU pair
    has a dedicated uni-directional link of ``inter_gpu_bytes_per_s``
    (the paper's DGX-1-style baseline); a GPU talking to all peers at
    once enjoys the aggregate.  Under ``switch`` (NVSwitch-style, the
    paper's reference [51]) each GPU has one fabric port of
    ``inter_gpu_bytes_per_s`` in each direction — skewed traffic to a
    single hot peer is no longer limited by one pairwise link, but the
    aggregate per GPU no longer scales with the peer count.
    """

    #: Uni-directional bandwidth of each inter-GPU link (p2p) or of each
    #: GPU's fabric port (switch).
    inter_gpu_bytes_per_s: float = 64.0e9
    #: Uni-directional bandwidth of the CPU link per GPU.
    cpu_gpu_bytes_per_s: float = 32.0e9
    #: One-way traversal latency of a link.
    latency_ns: float = 400.0
    topology: str = TOPOLOGY_P2P

    def validate(self) -> None:
        if self.inter_gpu_bytes_per_s <= 0 or self.cpu_gpu_bytes_per_s <= 0:
            raise ConfigError("link bandwidths must be positive")
        if self.latency_ns < 0:
            raise ConfigError("link latency cannot be negative")
        if self.topology not in (TOPOLOGY_P2P, TOPOLOGY_SWITCH):
            raise ConfigError(f"unknown link topology {self.topology!r}")


@dataclass(frozen=True)
class LinkFaultEvent:
    """One scripted fault epoch on the inter-GPU fabric.

    During kernels ``first_kernel..last_kernel`` (inclusive, counting
    every executed kernel including warmup), each matching directional
    link runs at ``scale`` of its configured bandwidth; ``scale = 0``
    is a full outage (traffic is rerouted through a healthy peer when
    possible).  ``src``/``dst`` of ``-1`` match any GPU.
    """

    first_kernel: int
    last_kernel: int
    scale: float = 0.0
    src: int = -1
    dst: int = -1

    def validate(self) -> None:
        if self.first_kernel < 0 or self.last_kernel < self.first_kernel:
            raise ConfigError("fault event kernel range is invalid")
        if not 0.0 <= self.scale <= 1.0:
            raise ConfigError("fault event scale must be in [0, 1]")
        if self.src < -1 or self.dst < -1:
            raise ConfigError("fault event GPU ids must be >= -1")


@dataclass(frozen=True)
class LinkFaultConfig:
    """Deterministic, seeded NUMA-fabric fault injection.

    Models the graceful-degradation question a multi-GPU training stack
    faces on NVLink flaps: per kernel, each directional link may be
    degraded (bandwidth scaled into ``[min_scale, 1)``) or suffer a full
    outage (bandwidth zeroed; traffic reroutes through a healthy
    intermediate GPU, doubling its byte cost).  The schedule is a pure
    function of ``(seed, kernel index, src, dst)`` — independent of
    Python hash randomisation and of execution order — so every run of a
    configuration sees the identical fault pattern.  Scripted ``events``
    override the random draw for the links/kernels they match.
    """

    seed: int = 0
    #: Per-kernel, per-link probability of a full outage.
    outage_prob: float = 0.0
    #: Per-kernel, per-link probability of bandwidth degradation.
    degrade_prob: float = 0.0
    #: Lower bound of the degraded bandwidth fraction.
    min_scale: float = 0.25
    #: Scripted epochs taking precedence over the random schedule.
    events: tuple[LinkFaultEvent, ...] = ()
    #: Reroute outage traffic through a healthy intermediate GPU.  When
    #: False (or no healthy route exists) the dead link instead retains
    #: its traffic at a severe residual bandwidth (retry/backpressure).
    reroute: bool = True

    def validate(self) -> None:
        if self.outage_prob < 0.0 or self.degrade_prob < 0.0:
            raise ConfigError("fault probabilities cannot be negative")
        if self.outage_prob + self.degrade_prob > 1.0:
            raise ConfigError("fault probabilities must sum to <= 1")
        if not 0.0 < self.min_scale <= 1.0:
            raise ConfigError("min_scale must be in (0, 1]")
        for event in self.events:
            event.validate()

    @property
    def active(self) -> bool:
        return (
            self.outage_prob > 0.0
            or self.degrade_prob > 0.0
            or bool(self.events)
        )


#: RDC write policies.
WRITE_THROUGH = "write_through"
WRITE_BACK = "write_back"

#: Coherence protocol names.
COHERENCE_NONE = "none"          # zero-overhead upper bound (CARVE-No-Coherence)
COHERENCE_SOFTWARE = "software"  # flush at kernel boundaries (CARVE-SWC)
COHERENCE_HARDWARE = "hardware"  # GPU-VI + IMST broadcast filter (CARVE-HWC)
COHERENCE_DIRECTORY = "directory"  # directory-based extension (Section V-E)

_COHERENCE_PROTOCOLS = (
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    COHERENCE_HARDWARE,
    COHERENCE_DIRECTORY,
)


@dataclass(frozen=True)
class RdcConfig:
    """Remote Data Cache (the CARVE carve-out) parameters."""

    #: Carve-out per GPU.  The paper's default is 2 GB of 32 GB (6.25%).
    size_bytes: int = 2 * 2**30
    write_policy: str = WRITE_THROUGH
    coherence: str = COHERENCE_HARDWARE
    #: Width of the per-stream epoch counter used for instant invalidation.
    epoch_bits: int = 20
    #: Probability that a local write demotes an IMST entry back to PRIVATE
    #: (after broadcasting invalidates), so lines do not stay shared forever.
    imst_demote_prob: float = 0.01
    #: Enable the miss-map style hit predictor that skips the RDC probe for
    #: predicted misses (mitigates the RandAccess outlier of Fig. 9).
    hit_predictor: bool = False
    hit_predictor_entries: int = 4096

    def validate(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("RDC size must be positive")
        if self.write_policy not in (WRITE_THROUGH, WRITE_BACK):
            raise ConfigError(f"unknown RDC write policy {self.write_policy!r}")
        if self.coherence not in _COHERENCE_PROTOCOLS:
            raise ConfigError(f"unknown coherence protocol {self.coherence!r}")
        if not 1 <= self.epoch_bits <= 32:
            raise ConfigError("epoch counter width must be in [1, 32]")
        if not 0.0 <= self.imst_demote_prob <= 1.0:
            raise ConfigError("IMST demotion probability must be in [0, 1]")


#: Page placement policies.
PLACEMENT_FIRST_TOUCH = "first_touch"
PLACEMENT_ROUND_ROBIN = "round_robin"
PLACEMENT_INTERLEAVED = "interleaved"

#: Software page replication policies.
REPLICATE_NONE = "none"
REPLICATE_READ_ONLY = "read_only"  # replicate read-only shared pages
REPLICATE_ALL = "all"              # ideal NUMA-GPU upper bound

#: CTA scheduling policies.
SCHEDULE_CONTIGUOUS = "contiguous"   # NUMA-GPU batched scheduling
SCHEDULE_ROUND_ROBIN = "round_robin"  # locality-oblivious ablation


@dataclass(frozen=True)
class SystemConfig:
    """Complete multi-GPU system description (defaults follow Table III)."""

    n_gpus: int = 4
    page_bytes: int = 2 * 2**20
    gpu: GpuConfig = field(default_factory=GpuConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    #: ``None`` disables NUMA-fabric fault injection (the default).
    link_faults: Optional[LinkFaultConfig] = None
    #: ``None`` disables CARVE entirely (baseline NUMA-GPU).
    rdc: Optional[RdcConfig] = None
    placement: str = PLACEMENT_FIRST_TOUCH
    replication: str = REPLICATE_NONE
    #: Enable runtime page migration of remotely accessed private pages.
    migration: bool = False
    #: Remote accesses required before a page migrates.
    migration_threshold: int = 16
    scheduling: str = SCHEDULE_CONTIGUOUS
    #: Capacity scale factor (see module docstring).
    scale: int = DEFAULT_SCALE
    #: Fixed kernel launch cost (driver overhead), seconds.
    kernel_launch_overhead_s: float = 4.0e-6
    #: Chunk size used when interleaving per-GPU access streams.  Small
    #: chunks approximate the fine-grain concurrency of real GPUs; large
    #: chunks would let one GPU first-touch far more than its share of
    #: the shared pages.
    interleave_chunk: int = 32
    #: Model the TLB hierarchy on the access path (off by default: it is
    #: not needed for any paper figure and costs simulation speed).
    model_tlb: bool = False

    # ------------------------------------------------------------------
    # Scaled geometry helpers.  All return sizes in *lines* (or scaled
    # bytes), i.e. the units the simulator actually operates in.
    # ------------------------------------------------------------------

    def scaled_bytes(self, real_bytes: int) -> int:
        """Scale a real capacity down, keeping at least one line."""
        return max(LINE_BYTES, real_bytes // self.scale)

    def lines(self, real_bytes: int) -> int:
        """Number of cache lines in a scaled-down capacity."""
        return max(1, self.scaled_bytes(real_bytes) // LINE_BYTES)

    @property
    def lines_per_page(self) -> int:
        return self.lines(self.page_bytes)

    @property
    def l1_lines(self) -> int:
        return self.lines(self.gpu.l1_bytes)

    @property
    def l2_lines(self) -> int:
        return self.lines(self.gpu.l2_bytes)

    @property
    def rdc_lines(self) -> int:
        if self.rdc is None:
            return 0
        return self.lines(self.rdc.size_bytes)

    @property
    def memory_lines(self) -> int:
        return self.lines(self.memory.capacity_bytes)

    @property
    def has_rdc(self) -> bool:
        return self.rdc is not None

    @property
    def total_llc_bytes(self) -> int:
        """Aggregate (unscaled) LLC capacity across the system."""
        return self.gpu.l2_bytes * self.n_gpus

    @property
    def compute_rate_per_gpu(self) -> float:
        """Peak warp instructions per second for one GPU."""
        return self.gpu.n_sms * self.gpu.ipc_per_sm * self.gpu.freq_hz

    def validate(self) -> None:
        if self.n_gpus <= 0:
            raise ConfigError("system must contain at least one GPU")
        if self.page_bytes < LINE_BYTES:
            raise ConfigError("a page must hold at least one line")
        if self.page_bytes % LINE_BYTES:
            raise ConfigError("page size must be a multiple of the line size")
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.placement not in (
            PLACEMENT_FIRST_TOUCH,
            PLACEMENT_ROUND_ROBIN,
            PLACEMENT_INTERLEAVED,
        ):
            raise ConfigError(f"unknown placement policy {self.placement!r}")
        if self.replication not in (
            REPLICATE_NONE,
            REPLICATE_READ_ONLY,
            REPLICATE_ALL,
        ):
            raise ConfigError(f"unknown replication policy {self.replication!r}")
        if self.scheduling not in (SCHEDULE_CONTIGUOUS, SCHEDULE_ROUND_ROBIN):
            raise ConfigError(f"unknown scheduling policy {self.scheduling!r}")
        if self.migration_threshold <= 0:
            raise ConfigError("migration threshold must be positive")
        if self.interleave_chunk <= 0:
            raise ConfigError("interleave chunk must be positive")
        if self.rdc is not None:
            self.rdc.validate()
            if self.rdc.size_bytes >= self.memory.capacity_bytes:
                raise ConfigError("RDC cannot consume the entire GPU memory")
        self.gpu.validate()
        self.memory.validate()
        self.link.validate()
        if self.link_faults is not None:
            self.link_faults.validate()

    # ------------------------------------------------------------------
    # Convenience constructors used throughout the experiments.
    # ------------------------------------------------------------------

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy with the given fields replaced (validated)."""
        cfg = dataclasses.replace(self, **changes)
        cfg.validate()
        return cfg

    def with_rdc(self, size_bytes: int = 2 * 2**30, **rdc_changes) -> "SystemConfig":
        """Return a copy of this config with CARVE enabled."""
        rdc = RdcConfig(size_bytes=size_bytes, **rdc_changes)
        return self.replace(rdc=rdc)

    def single_gpu(self) -> "SystemConfig":
        """The single-GPU reference system used as the speedup baseline."""
        return self.replace(n_gpus=1, rdc=None, replication=REPLICATE_NONE,
                            migration=False)


def baseline_config(**changes) -> SystemConfig:
    """The Table III baseline NUMA-GPU system (no CARVE)."""
    cfg = SystemConfig().replace(**changes) if changes else SystemConfig()
    cfg.validate()
    return cfg


def carve_config(
    rdc_bytes: int = 2 * 2**30,
    coherence: str = COHERENCE_HARDWARE,
    write_policy: str = WRITE_THROUGH,
    **changes,
) -> SystemConfig:
    """The Table III system with CARVE enabled (default: CARVE-HWC, 2 GB)."""
    cfg = baseline_config(**changes)
    return cfg.with_rdc(rdc_bytes, coherence=coherence, write_policy=write_policy)
