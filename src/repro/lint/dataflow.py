"""Reachability and result-affecting-scope derivation over the graph.

Two reachability modes serve different rule families:

* ``calls`` — follow only resolved call/construction edges.  Precise:
  every step of the returned chain is an actual call site.  CONC001
  uses this so an ``asyncio.to_thread`` hop (which passes the function
  as a *value*, producing no edge) genuinely cuts the chain.
* ``wide`` — additionally treat a constructed (or merely referenced)
  project class as "any method may run": all its methods become
  reachable, and a reachable function makes its module's import-time
  body reachable.  DET004/DET005 and the scope derivation use this —
  over-approximating keeps wall-clock taint from hiding behind dynamic
  dispatch.

The **result-affecting scope** is derived from :class:`ScopePolicy`
roots (``run_workload``, the engine registry, the coherence protocols)
as the modules owning any wide-reachable function, minus the policy's
orchestration excludes, then *package-closed*: once any module of a
package is result-affecting the whole package is included, so a
dynamic-dispatch resolution gap cannot silently drop a sibling module
from the VER001 gate.  The derived scope is committed as
``lint-scope.json`` (see :func:`scope_document` / :func:`diff_scope`);
``repro lint`` fails when the committed file and the derivation
disagree, making scope drift visible in review.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.lint.graph import MODULE_BODY, ProjectGraph

SCOPE_VERSION = 1


@dataclass(frozen=True)
class ScopePolicy:
    """Roots and refinements for the whole-program analyses.

    Every entry is ``(module rel path, name)``; a *name* that is a
    class means "all methods of that class".  ``exclude_prefixes``
    removes orchestration/observability trees from the derived
    result-affecting scope (their bit-exactness is enforced by runtime
    parity gates — journal digest parity, the obs overhead check — not
    by ``CODE_VERSION``).
    """

    #: Entry points of the simulated path.
    roots: tuple = (
        ("sim/driver.py", "run_workload"),
        ("sim/driver.py", "time_of"),
        ("sim/driver.py", "run_time"),
        ("numa/system.py", "MultiGpuSystem"),
        ("core/coherence.py", "make_protocol"),
    )
    #: Prefixes (or exact paths) excluded from the derived scope.
    exclude_prefixes: tuple = (
        "sim/", "obs/", "serve/", "lint/", "cli.py", "__main__.py",
    )
    #: Modules whose ``async def`` functions are CONC001 roots.
    async_prefixes: tuple = ("serve/",)
    #: Extra CONC001 roots: sync handlers that run on the event loop.
    async_extra_roots: tuple = (("serve/service.py", "ServeApp"),)
    #: Worker-process entry points (CONC002).  The dispatched task
    #: callable crosses the pipe as a pickled value, so the actual task
    #: entry is listed explicitly where one exists.
    worker_roots: tuple = (("sim/pool.py", "_worker_main"),)
    #: Parent-side entry points (CONC002).
    parent_roots: tuple = (
        ("sim/pool.py", "WorkerPool"),
        ("sim/runner.py", "run_tasks"),
        ("sim/runner.py", "run_suite"),
        ("sim/chaos.py", "run_drill"),
    )
    #: Modules in which ``*.Process(...)`` counts as a fork point.
    fork_modules: tuple = ("sim/pool.py",)


DEFAULT_POLICY = ScopePolicy()


@dataclass
class ReachEntry:
    """BFS bookkeeping: how a function became reachable."""

    func_id: str
    parent: Optional[str]  # parent function id
    line: int  # call-site line in the parent (0 for roots)
    note: str  # "call" | "construct" | "method-of-constructed" | ...


class Reachability:
    """Reachable set + parent pointers from one root set."""

    def __init__(self, entries: dict, roots: tuple) -> None:
        self.entries = entries  # func id -> ReachEntry
        self.roots = roots

    def __contains__(self, func_id: str) -> bool:
        return func_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def chain(self, func_id: str) -> list:
        """Root→*func_id* steps: ``[{func, path, line, note}]``."""
        steps: list = []
        cur: Optional[str] = func_id
        while cur is not None:
            entry = self.entries[cur]
            module, qualname = cur.split("::", 1)
            steps.append({
                "func": qualname,
                "path": module,
                "line": entry.line,
                "note": entry.note,
            })
            cur = entry.parent
        steps.reverse()
        return steps


def _expand_root(graph: ProjectGraph, module: str, name: str) -> list:
    """Root spec → function ids (a class means all its methods)."""
    cid = f"{module}::{name}"
    if cid in graph.classes:
        return graph.class_methods(cid)
    fid = f"{module}::{name}"
    return [fid] if fid in graph.functions else []


def reach(graph: ProjectGraph, roots, mode: str = "calls",
          stop_modules: tuple = ()) -> Reachability:
    """BFS over the graph from *roots* (``(module, name)`` pairs)."""
    root_ids = []
    for module, name in roots:
        root_ids.extend(_expand_root(graph, module, name))
    return reach_from_ids(graph, root_ids, mode=mode,
                          stop_modules=stop_modules,
                          origin=tuple(roots))


def reach_from_ids(graph: ProjectGraph, root_ids, mode: str = "calls",
                   stop_modules: tuple = (),
                   origin: tuple = ()) -> Reachability:
    """BFS from pre-expanded function ids.

    *stop_modules* prefixes are traversed **into** but not through —
    unused by default, reserved for policy tuning.
    """
    entries: dict = {}
    queue: list = []

    def visit(fid: str, parent: Optional[str], line: int,
              note: str) -> None:
        if fid in entries or fid not in graph.functions:
            return
        entries[fid] = ReachEntry(fid, parent, line, note)
        queue.append(fid)

    for fid in root_ids:
        visit(fid, None, 0, "root")

    while queue:
        fid = queue.pop(0)
        fn = graph.functions[fid]
        if any(fn.module.startswith(p) for p in stop_modules) \
                and entries[fid].note != "root":
            continue
        if mode == "wide":
            body = f"{fn.module}::{MODULE_BODY}"
            visit(body, fid, fn.line, "import-time body")
        for call in fn.calls:
            if call.target is None:
                continue
            if call.construct:
                cid = call.target
                if mode == "wide":
                    for mid in graph.class_methods(cid):
                        visit(mid, fid, call.line,
                              "method of constructed class")
                else:
                    init = graph.resolve_method(cid, "__init__")
                    if init is not None:
                        visit(init, fid, call.line, "construct")
            else:
                visit(call.target, fid, call.line, "call")
        if mode == "wide":
            for cid in fn.class_refs:
                for mid in graph.class_methods(cid):
                    visit(mid, fid, fn.line, "method of referenced class")
    return Reachability(entries, origin)


# ---------------------------------------------------------------------------
# Result-affecting scope
# ---------------------------------------------------------------------------

def _excluded(module: str, policy: ScopePolicy) -> bool:
    return any(
        module == p or module.startswith(p)
        for p in policy.exclude_prefixes
    )


def _package_of(module: str) -> str:
    """Top-level package dir of a module path ('' for top level)."""
    return module.split("/", 1)[0] if "/" in module else ""


@dataclass
class DerivedScope:
    """The derived result-affecting set, at every granularity."""

    #: module rel path -> "reachable" | "package-closure"
    modules: dict = field(default_factory=dict)
    #: scan-relative prefixes (package dirs + top-level files).
    prefixes: list = field(default_factory=list)
    #: function-level wide-reachable set (for the taint rules).
    reachable: Optional[Reachability] = None


def derive_scope(graph: ProjectGraph,
                 policy: ScopePolicy = DEFAULT_POLICY) -> DerivedScope:
    """Result-affecting modules/prefixes from the policy roots."""
    reached = reach(graph, policy.roots, mode="wide")
    modules: dict = {}
    for fid in reached.entries:
        module = fid.split("::", 1)[0]
        if not _excluded(module, policy):
            modules[module] = "reachable"
    packages = {
        _package_of(m) for m in modules if _package_of(m)
    }
    for module in graph.modules:
        if module in modules or _excluded(module, policy):
            continue
        if _package_of(module) in packages:
            modules[module] = "package-closure"
    prefixes = sorted(
        {f"{pkg}/" for pkg in packages}
        | {m for m in modules if "/" not in m}
    )
    return DerivedScope(
        modules=dict(sorted(modules.items())),
        prefixes=prefixes,
        reachable=reached,
    )


def scope_document(scope: DerivedScope, graph: ProjectGraph,
                   policy: ScopePolicy, *,
                   repo_prefix: str = "src/repro/") -> dict:
    """The committed ``lint-scope.json`` payload (sorted, diffable)."""
    return {
        "version": SCOPE_VERSION,
        "package": graph.package,
        "roots": sorted(f"{m}::{n}" for m, n in policy.roots),
        "exclude": sorted(policy.exclude_prefixes),
        "modules": scope.modules,
        "result_affecting": [
            repo_prefix + p for p in scope.prefixes
        ],
    }


def load_scope(path) -> dict:
    """Parse a committed scope file (raises ValueError when invalid)."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "result_affecting" not in doc:
        raise ValueError(
            f"{path}: expected an object with a result_affecting list"
        )
    if doc.get("version") != SCOPE_VERSION:
        raise ValueError(
            f"{path}: scope version {doc.get('version')!r}, expected "
            f"{SCOPE_VERSION}"
        )
    return doc


def save_scope(path, document: dict) -> None:
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def diff_scope(committed: dict, derived: dict) -> list:
    """Human-readable drift lines between the two scope documents."""
    problems = []
    old_mods = set(committed.get("modules", ()))
    new_mods = set(derived.get("modules", ()))
    for module in sorted(new_mods - old_mods):
        problems.append(f"module {module} is result-affecting but "
                        f"missing from the committed scope")
    for module in sorted(old_mods - new_mods):
        problems.append(f"committed scope lists {module}, which is no "
                        f"longer derived as result-affecting")
    if committed.get("result_affecting") != \
            derived.get("result_affecting"):
        problems.append(
            "result_affecting prefixes differ: committed "
            f"{committed.get('result_affecting')} vs derived "
            f"{derived.get('result_affecting')}"
        )
    for key in ("roots", "exclude"):
        if sorted(committed.get(key, ())) != sorted(derived.get(key, ())):
            problems.append(f"{key} differ between committed scope and "
                            f"policy derivation")
    return problems


def render_chain(chain: list) -> str:
    """Multi-line source→sink rendering of a finding chain."""
    lines = []
    for i, step in enumerate(chain):
        head = "  " * min(i, 8)
        loc = f"{step['path']}:{step['line']}" if step.get("line") \
            else step.get("path", "")
        note = step.get("note", "")
        suffix = f"  [{note}]" if note and note not in ("call",) else ""
        lines.append(f"{head}{step['func']} ({loc}){suffix}")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_POLICY",
    "DerivedScope",
    "Reachability",
    "ScopePolicy",
    "derive_scope",
    "diff_scope",
    "load_scope",
    "reach",
    "reach_from_ids",
    "render_chain",
    "save_scope",
    "scope_document",
]
