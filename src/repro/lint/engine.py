"""Lint driver: file collection, rule dispatch, selection, reporting.

:func:`run_lint` is the one entry point the CLI (and tests) call.  It
walks the scan root for ``*.py`` files, parses each once, runs every
selected per-module AST rule, builds the whole-program call graph and
runs the project rules (DET004/DET005/CONC001–003) over it, checks the
committed ``lint-scope.json`` against the derived result-affecting
scope (VER002), applies ``# lint: disable`` comments and the committed
baseline, optionally runs the repo-level VER001 rule, and returns a
:class:`LintResult` whose :attr:`~LintResult.exit_code` follows the
repository convention: 0 clean, 1 new findings, 2 bad configuration
(unknown rule id, malformed baseline, bad explicit git ref).

Finding paths are **repo-relative POSIX** (``src/repro/core/foo.py``)
regardless of the invocation cwd, so baselines and suppressions compare
equal whether lint runs from the repo root, ``src/``, or CI.  The repo
root is auto-discovered by walking up from the scan root to the first
directory holding ``pyproject.toml`` or ``.git`` (falling back to the
parent of a ``src/`` layout), so no flag is needed for the common case.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.dataflow import (
    DEFAULT_POLICY,
    derive_scope,
    diff_scope,
    load_scope,
    render_chain,
    scope_document,
)
from repro.lint.findings import (
    Finding,
    LintConfigError,
    apply_suppressions,
    parse_suppressions,
)
from repro.lint.graph import build_graph
from repro.lint.projectrules import (
    PROJECT_RULES,
    SCOPE_RULE_ID,
    scope_drift_findings,
)
from repro.lint.rules import DEFAULT_RULES, ModuleContext
from repro.lint.versioning import RESULT_AFFECTING, CodeVersionRule

#: Default name of the committed derived-scope file (repo root).
SCOPE_FILE = "lint-scope.json"

_AST_RULE_IDS = tuple(cls.id for cls in DEFAULT_RULES)
_PROJECT_RULE_IDS = tuple(cls.id for cls in PROJECT_RULES)

#: Every known rule id (AST + whole-program + repo-level).
ALL_RULE_IDS = tuple(
    [*_AST_RULE_IDS, *_PROJECT_RULE_IDS, SCOPE_RULE_ID,
     CodeVersionRule.id]
)
#: Rules run when no ``--select`` is given (VER001 is CI-only: it
#: needs a meaningful base ref to diff against).
DEFAULT_RULE_IDS = tuple(
    [*_AST_RULE_IDS, *_PROJECT_RULE_IDS, SCOPE_RULE_ID]
)


class LintResult:
    """All findings of one run plus the derived exit code."""

    def __init__(self, findings: Sequence[Finding],
                 selected: Sequence[str],
                 notices: Sequence[str] = (),
                 graph=None, scope=None,
                 scope_doc: Optional[dict] = None) -> None:
        self.findings = list(findings)
        self.selected = tuple(selected)
        #: Non-failing diagnostics (skipped VER001, missing scope file).
        self.notices = list(notices)
        #: The built :class:`~repro.lint.graph.ProjectGraph` (None when
        #: no whole-program rule ran) — feeds ``--graph-out``.
        self.graph = graph
        #: The :class:`~repro.lint.dataflow.DerivedScope` (when built).
        self.scope = scope
        #: The derived ``lint-scope.json`` payload (when built) —
        #: feeds ``--update-scope``.
        self.scope_doc = scope_doc

    @property
    def new(self) -> list:
        return [f for f in self.findings if f.is_new]

    @property
    def suppressed(self) -> list:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_json(self) -> dict:
        return {
            "version": 2,
            "rules": list(self.selected),
            "findings": [f.to_json() for f in self.findings],
            "notices": list(self.notices),
            "summary": {
                "total": len(self.findings),
                "new": len(self.new),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
        }

    def render_text(self) -> str:
        lines = []
        for finding in self.new:
            lines.append(finding.render())
            if finding.chain:
                lines.append("  call chain (source -> sink):")
                for chain_line in render_chain(finding.chain).splitlines():
                    lines.append("    " + chain_line)
        for notice in self.notices:
            lines.append(f"notice: {notice}")
        summary = (
            f"{len(self.new)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed "
            f"({len(self.selected)} rule(s))"
        )
        if not self.new:
            summary = "lint ok: " + summary
        return "\n".join(lines + [summary])

    def render(self, fmt: str) -> str:
        if fmt == "json":
            return json.dumps(self.to_json(), indent=2, sort_keys=True)
        return self.render_text()

    def explain(self, rule: str, path: str, line: int) -> Optional[str]:
        """Rendered chain of the finding at ``rule:path:line``.

        *path* may be repo-relative or a suffix of it; returns None
        when no finding matches.
        """
        for finding in self.findings:
            if finding.rule != rule or finding.line != line:
                continue
            if not (finding.path == path
                    or finding.path.endswith("/" + path)):
                continue
            body = finding.render()
            if finding.chain:
                body += "\n" + render_chain(finding.chain)
            return body
        return None


def resolve_selection(select: Optional[Iterable[str]],
                      ignore: Optional[Iterable[str]]) -> tuple:
    """Validated, ordered rule-id selection (exit 2 on unknown ids)."""
    known = set(ALL_RULE_IDS)
    for ids, flag in ((select, "--select"), (ignore, "--ignore")):
        for rid in ids or ():
            if rid not in known:
                raise LintConfigError(
                    f"{flag}: unknown rule id {rid!r} "
                    f"(known: {', '.join(ALL_RULE_IDS)})"
                )
    chosen = list(select) if select else list(DEFAULT_RULE_IDS)
    ignored = set(ignore or ())
    return tuple(rid for rid in chosen if rid not in ignored)


def python_files(scan_root: Path) -> list:
    """Sorted ``*.py`` files under *scan_root* (skipping caches)."""
    return sorted(
        p for p in scan_root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def discover_repo_root(scan_root: Path) -> Path:
    """Repository root for *scan_root* (cwd-independent).

    Walks up to the first directory holding ``pyproject.toml`` or
    ``.git``; falls back to the grandparent for a ``src/`` layout so
    fixture trees without markers still normalise the same way.
    """
    scan_root = Path(scan_root).resolve()
    for candidate in (scan_root, *scan_root.parents):
        if (candidate / "pyproject.toml").exists() \
                or (candidate / ".git").exists():
            return candidate
    if scan_root.parent.name == "src":
        return scan_root.parent.parent
    return scan_root.parent


def _display_prefix(scan_root: Path, repo_root: Path) -> str:
    """Repo-relative POSIX prefix for scan-relative module paths."""
    try:
        rel = scan_root.relative_to(repo_root).as_posix()
    except ValueError:
        return ""
    return "" if rel == "." else rel + "/"


def run_lint(
    scan_root,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline_path=None,
    repo_root=None,
    ver_base: Optional[str] = None,
    cache_dir=None,
    policy=DEFAULT_POLICY,
    scope_path=None,
    need_graph: bool = False,
) -> LintResult:
    """Run the selected rules over *scan_root* and return the result.

    ``baseline_path`` (when given and existing) grandfathers known
    findings; a missing *explicitly requested* baseline is a
    configuration error.  ``repo_root`` anchors path display, the
    committed scope file, and the VER001 git diff (auto-discovered
    from *scan_root* when omitted).  ``ver_base`` is the VER001 base
    ref: when given explicitly, a git failure is a configuration error
    (exit 2); when None, VER001 tries ``origin/main`` then ``main``
    and **skips with a notice** if neither resolves (no git repo, no
    such ref) — the local/non-CI case.  ``cache_dir`` enables the
    on-disk call-graph cache; ``need_graph`` forces the graph build
    even when no whole-program rule is selected (``--graph-out``).
    """
    scan_root = Path(scan_root).resolve()
    if not scan_root.is_dir():
        raise LintConfigError(f"scan root {scan_root} is not a directory")
    repo_root = Path(repo_root).resolve() if repo_root is not None \
        else discover_repo_root(scan_root)
    prefix = _display_prefix(scan_root, repo_root)
    selected = resolve_selection(select, ignore)
    notices: list = []

    ast_rules = [cls() for cls in DEFAULT_RULES if cls.id in selected]
    findings: list = []
    parsed: list = []  # [(rel, tree)] for the graph builder
    sources: list = []  # [(rel, source)] for the cache key
    suppressions: dict = {}  # rel -> {line: frozenset(ids)}
    for path in python_files(scan_root):
        source = path.read_text(encoding="utf-8")
        rel = path.relative_to(scan_root).as_posix()
        try:
            ctx = ModuleContext(rel, source)
        except SyntaxError as exc:
            raise LintConfigError(f"cannot parse {path}: {exc}")
        parsed.append((rel, ctx.tree))
        sources.append((rel, source))
        suppressions[rel] = parse_suppressions(source)
        for rule in ast_rules:
            findings.extend(rule.check_module(ctx))

    graph = scope = scope_doc = None
    want_project = [cls for cls in PROJECT_RULES
                    if cls.id in selected]
    want_scope = SCOPE_RULE_ID in selected
    if want_project or want_scope or need_graph:
        graph = build_graph(
            parsed, package=scan_root.name,
            sources=sources, cache_dir=cache_dir,
        )
        scope = derive_scope(graph, policy)
        scope_doc = scope_document(
            scope, graph, policy,
            repo_prefix=prefix,
        )
        for cls in want_project:
            findings.extend(cls().check_project(graph, policy, scope))

    # Module findings: suppress by scan-relative path, then display
    # repo-relative (chains included).
    for finding in findings:
        disabled = suppressions.get(finding.path)
        if disabled is not None:
            apply_suppressions([finding], disabled)
        finding.path = prefix + finding.path
        for step in finding.chain:
            step["path"] = prefix + step["path"]

    # Repo-level findings (already repo-relative paths).
    if want_scope and scope_doc is not None:
        scope_file = Path(scope_path) if scope_path is not None \
            else repo_root / SCOPE_FILE
        if not scope_file.exists():
            notices.append(
                f"{SCOPE_RULE_ID}: no committed {SCOPE_FILE} — run "
                f"`python -m repro lint --update-scope` to derive and "
                f"commit the result-affecting scope"
            )
        else:
            try:
                committed = load_scope(scope_file)
            except (ValueError, json.JSONDecodeError) as exc:
                raise LintConfigError(str(exc))
            rel = scope_file.name
            try:
                rel = scope_file.resolve().relative_to(
                    repo_root).as_posix()
            except ValueError:
                pass
            findings.extend(scope_drift_findings(
                diff_scope(committed, scope_doc), rel
            ))

    if CodeVersionRule.id in selected:
        findings.extend(_run_ver001(
            repo_root, ver_base, scope_path, notices
        ))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline_path is not None:
        apply_baseline(findings, load_baseline(baseline_path))
    return LintResult(findings, selected, notices=notices,
                      graph=graph, scope=scope, scope_doc=scope_doc)


def _run_ver001(repo_root: Path, ver_base: Optional[str],
                scope_path, notices: list) -> list:
    """VER001 with committed-scope prefixes and notice-skip.

    The result-affecting prefixes come from the committed
    ``lint-scope.json`` when present (the derived scope is the source
    of truth); the legacy hard-coded list is only the bootstrap
    fallback.
    """
    prefixes = RESULT_AFFECTING
    scope_file = Path(scope_path) if scope_path is not None \
        else repo_root / SCOPE_FILE
    if scope_file.exists():
        try:
            committed = load_scope(scope_file)
            prefixes = tuple(committed["result_affecting"])
        except (ValueError, json.JSONDecodeError):
            pass  # VER002 reports the malformed file
    explicit = ver_base is not None
    candidates = [ver_base] if explicit else ["origin/main", "main"]
    last_error = None
    for base in candidates:
        rule = CodeVersionRule(base_ref=base, prefixes=prefixes)
        try:
            return list(rule.check_repo(repo_root))
        except LintConfigError as exc:
            if explicit:
                raise
            last_error = exc
    notices.append(
        f"{CodeVersionRule.id} skipped: no usable base ref "
        f"({last_error}); pass --ver-base REF to enable the "
        f"CODE_VERSION gate"
    )
    return []


__all__ = [
    "ALL_RULE_IDS",
    "DEFAULT_RULE_IDS",
    "LintResult",
    "SCOPE_FILE",
    "discover_repo_root",
    "python_files",
    "resolve_selection",
    "run_lint",
]
