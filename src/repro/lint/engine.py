"""Lint driver: file collection, rule dispatch, selection, reporting.

:func:`run_lint` is the one entry point the CLI (and tests) call.  It
walks the scan root for ``*.py`` files, parses each once, runs every
selected AST rule, applies ``# lint: disable`` comments and the
committed baseline, optionally runs the repo-level VER001 rule, and
returns a :class:`LintResult` whose :attr:`~LintResult.exit_code`
follows the repository convention: 0 clean, 1 new findings, 2 bad
configuration (unknown rule id, malformed baseline, bad git ref).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.findings import (
    Finding,
    LintConfigError,
    apply_suppressions,
    parse_suppressions,
)
from repro.lint.rules import DEFAULT_RULES, ModuleContext
from repro.lint.versioning import CodeVersionRule

#: Every known rule id (AST rules plus the repo-level VER001).
ALL_RULE_IDS = tuple(
    [cls.id for cls in DEFAULT_RULES] + [CodeVersionRule.id]
)
#: Rules run when no ``--select`` is given (VER001 is CI-only).
DEFAULT_RULE_IDS = tuple(cls.id for cls in DEFAULT_RULES)


class LintResult:
    """All findings of one run plus the derived exit code."""

    def __init__(self, findings: Sequence[Finding],
                 selected: Sequence[str]) -> None:
        self.findings = list(findings)
        self.selected = tuple(selected)

    @property
    def new(self) -> list:
        return [f for f in self.findings if f.is_new]

    @property
    def suppressed(self) -> list:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_json(self) -> dict:
        return {
            "version": 1,
            "rules": list(self.selected),
            "findings": [f.to_json() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "new": len(self.new),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.new]
        summary = (
            f"{len(self.new)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed "
            f"({len(self.selected)} rule(s))"
        )
        if not self.new:
            summary = "lint ok: " + summary
        return "\n".join(lines + [summary])

    def render(self, fmt: str) -> str:
        if fmt == "json":
            return json.dumps(self.to_json(), indent=2, sort_keys=True)
        return self.render_text()


def resolve_selection(select: Optional[Iterable[str]],
                      ignore: Optional[Iterable[str]]) -> tuple:
    """Validated, ordered rule-id selection (exit 2 on unknown ids)."""
    known = set(ALL_RULE_IDS)
    for ids, flag in ((select, "--select"), (ignore, "--ignore")):
        for rid in ids or ():
            if rid not in known:
                raise LintConfigError(
                    f"{flag}: unknown rule id {rid!r} "
                    f"(known: {', '.join(ALL_RULE_IDS)})"
                )
    chosen = list(select) if select else list(DEFAULT_RULE_IDS)
    ignored = set(ignore or ())
    return tuple(rid for rid in chosen if rid not in ignored)


def python_files(scan_root: Path) -> list:
    """Sorted ``*.py`` files under *scan_root* (skipping caches)."""
    return sorted(
        p for p in scan_root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def run_lint(
    scan_root,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline_path=None,
    repo_root=None,
    ver_base: str = "origin/main",
) -> LintResult:
    """Run the selected rules over *scan_root* and return the result.

    ``baseline_path`` (when given and existing) grandfathers known
    findings; a missing *explicitly requested* baseline is a
    configuration error.  ``repo_root`` anchors the VER001 git diff
    (defaults to *scan_root*'s repository working directory).
    """
    scan_root = Path(scan_root)
    if not scan_root.is_dir():
        raise LintConfigError(f"scan root {scan_root} is not a directory")
    selected = resolve_selection(select, ignore)

    ast_rules = [cls() for cls in DEFAULT_RULES if cls.id in selected]
    findings: list = []
    for path in python_files(scan_root):
        source = path.read_text(encoding="utf-8")
        rel = path.relative_to(scan_root).as_posix()
        try:
            ctx = ModuleContext(rel, source)
        except SyntaxError as exc:
            raise LintConfigError(f"cannot parse {path}: {exc}")
        module_findings: list = []
        for rule in ast_rules:
            module_findings.extend(rule.check_module(ctx))
        apply_suppressions(module_findings, parse_suppressions(source))
        findings.extend(module_findings)

    if CodeVersionRule.id in selected:
        rule = CodeVersionRule(base_ref=ver_base)
        findings.extend(rule.check_repo(
            Path(repo_root) if repo_root is not None else Path.cwd()
        ))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline_path is not None:
        apply_baseline(findings, load_baseline(baseline_path))
    return LintResult(findings, selected)


__all__ = [
    "ALL_RULE_IDS",
    "DEFAULT_RULE_IDS",
    "LintResult",
    "python_files",
    "resolve_selection",
    "run_lint",
]
