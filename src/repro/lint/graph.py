"""Cross-module import/call graph over the scanned package.

One AST pass per module builds a whole-program :class:`ProjectGraph`:
function and class nodes, call edges between them, and the per-function
facts the project-level rules (DET004/DET005/CONC001-003, see
:mod:`repro.lint.projectrules`) consume.  The graph is a plain picklable
value object — :func:`build_graph` caches it on disk keyed on a hash of
every source file, so unrelated re-runs skip the whole analysis pass.

Precision contract (documented for rule consumers in ``docs/lint.md``):

Resolved (an edge exists):

* direct calls to functions of the same module, ``from``-imported
  functions, and ``mod.fn()`` attribute calls on imported project
  modules (aliases honoured);
* project class construction (``Cls(...)`` → ``Cls.__init__``), and
  method calls on ``self``, on parameters/locals whose class is known
  (``x = Cls(...)``, ``def f(c: Cls)``), on attributes assigned a
  constructed class anywhere in the same class (``self.x = Cls(...)``),
  and directly chained ``Cls(...).m()`` / ``Cls.m(obj)`` — inherited
  methods are found by walking project base classes;
* nested ``def``/``lambda`` bodies are inlined into their enclosing
  function (a callback defined inline is analysed as part of its
  definer);
* module-level statements form a ``<module>`` pseudo-function.

Not resolved (the chain is cut; sites are still counted in
:attr:`ProjectGraph.unresolved_calls`):

* calls on values of unannotated parameters, call results, or container
  elements — there is no interprocedural type inference;
* dynamic dispatch: ``getattr``, string-keyed registries, monkeypatched
  names, ``*``-imports;
* function *values* passed as arguments — notably
  ``asyncio.to_thread(fn)`` / ``run_in_executor``: the executor hop
  deliberately cuts CONC001 chains.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

GRAPH_SCHEMA = 3

#: ``qualname`` of the pseudo-function holding module-level statements.
MODULE_BODY = "<module>"

#: Methods on a bare name treated as mutating the named object in
#: place (for the module-global write fact behind CONC002).
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
})

#: Constructors classified as lock-like for the CONC003 held-context
#: fact (plus any name/attribute whose identifier mentions "lock").
_LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
})


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    #: Resolved project target (``module.py::qualname``) or None.
    target: Optional[str] = None
    #: Dotted name after alias resolution (``time.time``) — kept for
    #: external calls and for unresolved attribute chains (``conn.recv``).
    name: Optional[str] = None
    #: True when *target* names a class: a construction edge.
    construct: bool = False


@dataclass
class HeldContext:
    """A ``with`` block holding a lock or an open file handle."""

    kind: str  # "lock" | "file"
    what: str  # rendered context expression
    line: int
    col: int
    end_line: int


@dataclass
class RngEscape:
    """A zero-argument RNG construction passed into another call."""

    ctor: str  # dotted ctor name, e.g. random.Random
    target: Optional[str]  # resolved callee function id (or None)
    callee_name: Optional[str]  # dotted callee name for the message
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One function/method node (or a module-body pseudo-node)."""

    module: str  # scan-root-relative posix path
    qualname: str
    line: int
    is_async: bool = False
    calls: list = field(default_factory=list)  # [CallSite]
    #: Module-level names this function writes: [(name, line, col)].
    global_writes: list = field(default_factory=list)
    #: Project classes referenced outside call position (constructible).
    class_refs: list = field(default_factory=list)
    rng_escapes: list = field(default_factory=list)  # [RngEscape]
    held_contexts: list = field(default_factory=list)  # [HeldContext]

    @property
    def id(self) -> str:
        return f"{self.module}::{self.qualname}"


@dataclass
class ClassInfo:
    """One project class: methods plus resolvable project bases."""

    module: str
    name: str
    line: int
    bases: list = field(default_factory=list)  # resolved class ids
    methods: dict = field(default_factory=dict)  # name -> function id

    @property
    def id(self) -> str:
        return f"{self.module}::{self.name}"


class ProjectGraph:
    """The whole-program call graph plus per-function facts."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: list = []  # rel posix paths, sorted
        self.functions: dict = {}  # id -> FunctionInfo
        self.classes: dict = {}  # id -> ClassInfo
        self.resolved_calls = 0
        self.unresolved_calls = 0

    # -- lookups ---------------------------------------------------------

    def function(self, module: str, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(f"{module}::{qualname}")

    def functions_of(self, module: str):
        prefix = module + "::"
        return [f for fid, f in self.functions.items()
                if fid.startswith(prefix)]

    def resolve_method(self, class_id: str,
                       method: str) -> Optional[str]:
        """Method lookup through project base classes (DFS order)."""
        seen = set()
        stack = [class_id]
        while stack:
            cid = stack.pop(0)
            if cid in seen:
                continue
            seen.add(cid)
            cls = self.classes.get(cid)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(cls.bases)
        return None

    def class_methods(self, class_id: str) -> list:
        """Every method id of *class_id* including inherited ones."""
        out, seen_names, seen_cls = [], set(), set()
        stack = [class_id]
        while stack:
            cid = stack.pop(0)
            if cid in seen_cls:
                continue
            seen_cls.add(cid)
            cls = self.classes.get(cid)
            if cls is None:
                continue
            for name, fid in sorted(cls.methods.items()):
                if name not in seen_names:
                    seen_names.add(name)
                    out.append(fid)
            stack.extend(cls.bases)
        return out

    def stats(self) -> dict:
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "classes": len(self.classes),
            "resolved_calls": self.resolved_calls,
            "unresolved_calls": self.unresolved_calls,
        }

    # -- exports ---------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": GRAPH_SCHEMA,
            "package": self.package,
            "stats": self.stats(),
            "functions": {
                fid: {
                    "module": fn.module,
                    "qualname": fn.qualname,
                    "line": fn.line,
                    "async": fn.is_async,
                    "calls": [
                        {"line": c.line, "target": c.target,
                         "name": c.name, "construct": c.construct}
                        for c in fn.calls
                    ],
                }
                for fid, fn in sorted(self.functions.items())
            },
            "classes": {
                cid: {"bases": list(cls.bases),
                      "methods": dict(sorted(cls.methods.items()))}
                for cid, cls in sorted(self.classes.items())
            },
        }

    def to_dot(self) -> str:
        lines = ["digraph calls {", "  rankdir=LR;"]
        for fid in sorted(self.functions):
            lines.append(f'  "{fid}";')
        for fid, fn in sorted(self.functions.items()):
            seen = set()
            for call in fn.calls:
                if call.target and call.target not in seen:
                    seen.add(call.target)
                    style = " [style=dashed]" if call.construct else ""
                    lines.append(f'  "{fid}" -> "{call.target}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Per-module symbol tables
# ---------------------------------------------------------------------------

def _module_of_dotted(dotted: str, package: str,
                      modules: set) -> Optional[str]:
    """Project module path for a dotted import name, or None.

    ``repro.sim.driver`` → ``sim/driver.py``; ``repro`` →
    ``__init__.py``; ``repro.workloads`` → ``workloads/__init__.py``.
    """
    if dotted == package:
        return "__init__.py" if "__init__.py" in modules else None
    prefix = package + "."
    if not dotted.startswith(prefix):
        return None
    rel = dotted[len(prefix):].replace(".", "/")
    for candidate in (rel + ".py", rel + "/__init__.py"):
        if candidate in modules:
            return candidate
    return None


class _ModuleTable:
    """Import aliases and top-level symbols of one module."""

    def __init__(self, rel_path: str, tree: ast.AST, package: str,
                 modules: set) -> None:
        self.rel_path = rel_path
        self.package = package
        self.modules = modules
        #: local name -> ("module", rel_path) | ("symbol", rel_path,
        #: name) | ("external", dotted)
        self.imports: dict = {}
        #: top-level def/class names of this module.
        self.defs: set = set()
        self.class_names: set = set()
        self._collect(tree)

    def _dotted_package(self) -> str:
        """Dotted name of the package containing this module."""
        parts = Path(self.rel_path).parts[:-1]
        return ".".join([self.package, *parts]) if parts else self.package

    def _collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    dotted = alias.name if alias.asname \
                        else alias.name.split(".", 1)[0]
                    mod = _module_of_dotted(dotted, self.package,
                                            self.modules)
                    if mod is not None:
                        self.imports[local] = ("module", mod)
                    else:
                        self.imports[local] = ("external", dotted)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    pkg_parts = self._dotted_package().split(".")
                    up = node.level - 1
                    if up:
                        pkg_parts = pkg_parts[:-up] if up < len(pkg_parts) \
                            else pkg_parts[:1]
                    base = ".".join(pkg_parts + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    as_module = _module_of_dotted(
                        f"{base}.{alias.name}", self.package, self.modules
                    )
                    from_module = _module_of_dotted(
                        base, self.package, self.modules
                    )
                    if as_module is not None:
                        self.imports[local] = ("module", as_module)
                    elif from_module is not None:
                        self.imports[local] = (
                            "symbol", from_module, alias.name
                        )
                    else:
                        self.imports[local] = (
                            "external", f"{base}.{alias.name}"
                        )
        for stmt in getattr(tree, "body", ()):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.defs.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.defs.add(stmt.name)
                self.class_names.add(stmt.name)

    #: Module-level variable names (assignment targets in the body).
    def module_globals(self, tree: ast.AST) -> set:
        names = set()
        for stmt in getattr(tree, "body", ()):
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
        return names


def _dotted(node: ast.AST) -> Optional[list]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]``, or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------

class _GraphBuilder:
    def __init__(self, package: str, parsed: Sequence) -> None:
        # parsed: [(rel_path, tree)]
        self.graph = ProjectGraph(package)
        self.graph.modules = sorted(rel for rel, _tree in parsed)
        modules = set(self.graph.modules)
        self.tables = {
            rel: _ModuleTable(rel, tree, package, modules)
            for rel, tree in parsed
        }
        self.trees = dict(parsed)

    def build(self) -> ProjectGraph:
        for rel in self.graph.modules:
            self._declare_module(rel)
        self._resolve_bases()
        self._collect_attr_types()
        for rel in self.graph.modules:
            self._analyze_module(rel)
        return self.graph

    # -- declaration pass ------------------------------------------------

    def _declare_module(self, rel: str) -> None:
        tree = self.trees[rel]
        g = self.graph
        body_fn = FunctionInfo(rel, MODULE_BODY, 1)
        g.functions[body_fn.id] = body_fn
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    rel, stmt.name, stmt.lineno,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                g.functions[fn.id] = fn
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(rel, stmt.name, stmt.lineno)
                g.classes[cls.id] = cls
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        fn = FunctionInfo(
                            rel, f"{stmt.name}.{sub.name}", sub.lineno,
                            is_async=isinstance(sub,
                                                ast.AsyncFunctionDef),
                        )
                        g.functions[fn.id] = fn
                        cls.methods[sub.name] = fn.id

    def _resolve_bases(self) -> None:
        for rel in self.graph.modules:
            table = self.tables[rel]
            for stmt in self.trees[rel].body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                cls = self.graph.classes[f"{rel}::{stmt.name}"]
                for base in stmt.bases:
                    cid = self._class_of_expr(base, table)
                    if cid is not None:
                        cls.bases.append(cid)

    def _class_of_expr(self, node: ast.AST,
                       table: _ModuleTable) -> Optional[str]:
        """Resolve an expression naming a project class, or None."""
        parts = _dotted(node)
        if not parts:
            return None
        head = parts[0]
        if len(parts) == 1:
            if head in table.class_names:
                return f"{table.rel_path}::{head}"
            entry = table.imports.get(head)
            if entry and entry[0] == "symbol":
                _kind, mod, name = entry
                cid = f"{mod}::{name}"
                return cid if cid in self.graph.classes else None
            return None
        entry = table.imports.get(head)
        if entry and entry[0] == "module" and len(parts) == 2:
            cid = f"{entry[1]}::{parts[1]}"
            return cid if cid in self.graph.classes else None
        return None

    def _collect_attr_types(self) -> None:
        """``self.x = Cls(...)`` attribute types per class."""
        self.attr_types: dict = {}  # class id -> {attr: class id}
        for rel in self.graph.modules:
            table = self.tables[rel]
            for stmt in self.trees[rel].body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                cid = f"{rel}::{stmt.name}"
                attrs: dict = {}
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign):
                        continue
                    value_cls = (
                        self._class_of_expr(node.value.func, table)
                        if isinstance(node.value, ast.Call) else None
                    )
                    if value_cls is None:
                        continue
                    for target in node.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            attrs[target.attr] = value_cls
                self.attr_types[cid] = attrs

    # -- analysis pass ---------------------------------------------------

    def _analyze_module(self, rel: str) -> None:
        tree = self.trees[rel]
        table = self.tables[rel]
        module_globals = table.module_globals(tree)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self.graph.functions[f"{rel}::{stmt.name}"]
                _FunctionAnalyzer(
                    self, table, fn, module_globals, class_id=None
                ).run(stmt)
            elif isinstance(stmt, ast.ClassDef):
                cid = f"{rel}::{stmt.name}"
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        fn = self.graph.functions[
                            f"{rel}::{stmt.name}.{sub.name}"
                        ]
                        _FunctionAnalyzer(
                            self, table, fn, module_globals, class_id=cid
                        ).run(sub)
        # Module-level statements (registries, constants, side effects).
        body_fn = self.graph.functions[f"{rel}::{MODULE_BODY}"]
        analyzer = _FunctionAnalyzer(
            self, table, body_fn, module_globals, class_id=None
        )
        pseudo = ast.Module(
            body=[s for s in tree.body
                  if not isinstance(s, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef))],
            type_ignores=[],
        )
        analyzer.run_body(pseudo.body)


class _FunctionAnalyzer:
    """Extracts call edges and rule facts from one function body."""

    def __init__(self, builder: _GraphBuilder, table: _ModuleTable,
                 fn: FunctionInfo, module_globals: set,
                 class_id: Optional[str]) -> None:
        self.b = builder
        self.table = table
        self.fn = fn
        self.module_globals = module_globals
        self.class_id = class_id
        self.local_types: dict = {}  # name -> class id
        self.rng_locals: dict = {}  # name -> ctor dotted name
        self.local_names: set = set()  # every locally-bound name
        self.global_decls: set = set()

    # -- entry points ----------------------------------------------------

    def run(self, node) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.local_names.add(arg.arg)
        for special in (args.vararg, args.kwarg):
            if special is not None:
                self.local_names.add(special.arg)
        for arg, cls in self._annotated_params(node):
            self.local_types[arg] = cls
        self.run_body(node.body)

    def run_body(self, body) -> None:
        for stmt in body:
            self._statement(stmt)

    def _annotated_params(self, node):
        for arg in list(node.args.args) + list(node.args.kwonlyargs) \
                + list(node.args.posonlyargs):
            if arg.annotation is not None:
                cls = self.b._class_of_expr(arg.annotation, self.table)
                if cls is not None:
                    yield arg.arg, cls

    # -- statement walk (nested defs inlined, order preserved) ----------

    def _statement(self, stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Inline nested defs: their calls belong to the definer.
            self.run_body(stmt.body)
            return
        if isinstance(stmt, ast.ClassDef):
            return  # handled as its own scope by the builder
        if isinstance(stmt, ast.Global):
            self.global_decls.update(stmt.names)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            self._track_assign(stmt)
            self._track_global_write_targets(stmt.targets, stmt)
            return
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                self._expr(stmt.value)
            self._track_global_write_targets([stmt.target], stmt)
            return
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            self._with(stmt)
            return
        # Generic: visit child expressions and child statements once
        # each (iter_child_nodes flattens body/orelse/finalbody lists).
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.stmt):
                self._statement(child)
            elif isinstance(child, ast.excepthandler):
                for sub in child.body:
                    self._statement(sub)
            elif isinstance(child, ast.withitem):
                self._expr(child.context_expr)

    def _with(self, stmt) -> None:
        for item in stmt.items:
            self._expr(item.context_expr)
            kind = self._held_kind(item.context_expr)
            if kind is not None:
                self.fn.held_contexts.append(HeldContext(
                    kind=kind,
                    what=ast.unparse(item.context_expr),
                    line=stmt.lineno, col=stmt.col_offset,
                    end_line=getattr(stmt, "end_lineno", stmt.lineno),
                ))
        for sub in stmt.body:
            self._statement(sub)

    def _held_kind(self, expr) -> Optional[str]:
        node = expr.func if isinstance(expr, ast.Call) else expr
        parts = _dotted(node)
        if parts is None:
            return None
        dotted = ".".join(parts)
        resolved = self._external_name(parts)
        if isinstance(expr, ast.Call) and (
                resolved == "open" or dotted == "open"
                or (resolved or "").endswith(".open")):
            return "file"
        if resolved in _LOCK_CTORS:
            return "lock"
        if "lock" in parts[-1].lower():
            return "lock"
        return None

    # -- assignments -----------------------------------------------------

    def _bound_names(self, target):
        """Names an assignment target *binds* (not subscript bases)."""
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._bound_names(elt)
        elif isinstance(target, ast.Starred):
            yield from self._bound_names(target.value)

    def _track_assign(self, stmt: ast.Assign) -> None:
        for target in stmt.targets:
            for name in self._bound_names(target):
                if name not in self.global_decls:
                    self.local_names.add(name)
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0],
                                                    ast.Name):
            return
        name = stmt.targets[0].id
        self.local_types.pop(name, None)
        self.rng_locals.pop(name, None)
        if not isinstance(stmt.value, ast.Call):
            return
        cls = self.b._class_of_expr(stmt.value.func, self.table)
        if cls is not None:
            self.local_types[name] = cls
            return
        ctor = self._rng_ctor(stmt.value)
        if ctor is not None:
            self.rng_locals[name] = ctor

    def _track_global_write_targets(self, targets, stmt) -> None:
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                if target.id in self.global_decls:
                    name = target.id
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                base = target.value
                if isinstance(base, ast.Name) and (
                        base.id in self.global_decls
                        or (base.id in self.module_globals
                            and base.id not in self.local_names
                            and self.fn.qualname != MODULE_BODY)):
                    name = base.id
            if name is not None:
                self.fn.global_writes.append(
                    (name, stmt.lineno, stmt.col_offset)
                )

    # -- expressions -----------------------------------------------------

    def _expr(self, node) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call(sub)
            elif isinstance(sub, ast.Lambda):
                pass  # body walked by ast.walk; calls inlined below
            elif isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load):
                self._class_reference(sub)

    def _class_reference(self, node: ast.Name) -> None:
        cid = self.b._class_of_expr(node, self.table)
        if cid is not None:
            self.fn.class_refs.append(cid)

    def _rng_ctor(self, call: ast.Call) -> Optional[str]:
        parts = _dotted(call.func)
        if parts is None:
            return None
        name = self._external_name(parts)
        if name in ("random.Random", "numpy.random.default_rng",
                    "numpy.random.RandomState") \
                and not call.args and not call.keywords:
            return name
        return None

    def _external_name(self, parts) -> Optional[str]:
        """Alias-resolved dotted name for an external reference."""
        head = parts[0]
        entry = self.table.imports.get(head)
        if entry is None:
            return ".".join(parts)
        if entry[0] == "external":
            return ".".join([entry[1], *parts[1:]])
        return None

    def _call(self, call: ast.Call) -> None:
        site = CallSite(line=call.lineno, col=call.col_offset)
        self._resolve_call(call, site)
        self.fn.calls.append(site)
        if site.target is not None:
            self.b.graph.resolved_calls += 1
        else:
            self.b.graph.unresolved_calls += 1
        self._rng_escapes(call, site)
        self._mutator_write(call)

    def _mutator_write(self, call: ast.Call) -> None:
        """``NAME.append(...)`` on a module global is a write fact."""
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)):
            return
        base = func.value.id
        if base in self.global_decls or (
                base in self.module_globals
                and base not in self.local_names
                and self.fn.qualname != MODULE_BODY):
            self.fn.global_writes.append(
                (base, call.lineno, call.col_offset)
            )

    def _rng_escapes(self, call: ast.Call, site: CallSite) -> None:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            ctor = None
            if isinstance(arg, ast.Call):
                ctor = self._rng_ctor(arg)
            elif isinstance(arg, ast.Name):
                ctor = self.rng_locals.get(arg.id)
            if ctor is not None:
                self.fn.rng_escapes.append(RngEscape(
                    ctor=ctor, target=site.target,
                    callee_name=site.name,
                    line=arg.lineno, col=arg.col_offset,
                ))

    def _resolve_call(self, call: ast.Call, site: CallSite) -> None:
        g = self.b.graph
        func = call.func
        # Cls(...).method(...) — resolve the chained method call.
        if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Call):
            inner_cls = self.b._class_of_expr(func.value.func, self.table)
            if inner_cls is not None:
                target = g.resolve_method(inner_cls, func.attr)
                if target is not None:
                    site.target = target
                    site.name = f"{inner_cls}.{func.attr}"
                    return
        parts = _dotted(func)
        if parts is None:
            return
        head = parts[0]
        # self.method() / self.attr.method()
        if head == "self" and self.class_id is not None:
            if len(parts) == 2:
                site.target = g.resolve_method(self.class_id, parts[1])
                site.name = ".".join(parts)
                return
            if len(parts) == 3:
                attrs = self.b.attr_types.get(self.class_id, {})
                owner = attrs.get(parts[1])
                if owner is not None:
                    site.target = g.resolve_method(owner, parts[2])
                site.name = ".".join(parts)
                return
            site.name = ".".join(parts)
            return
        # method call on a typed local / annotated parameter
        if len(parts) == 2 and head in self.local_types:
            site.target = g.resolve_method(self.local_types[head],
                                           parts[1])
            site.name = ".".join(parts)
            return
        entry = self.table.imports.get(head)
        if entry is None:
            if len(parts) == 1:
                # Same-module function, class, or unknown bare name.
                if head in self.table.class_names:
                    cid = f"{self.table.rel_path}::{head}"
                    self._construction(site, cid, parts)
                    return
                fid = f"{self.table.rel_path}::{head}"
                if fid in g.functions:
                    site.target = fid
                    site.name = head
                    return
                site.name = head
                return
            # Same-module class attribute call: Cls.method(obj)
            if head in self.table.class_names and len(parts) == 2:
                cid = f"{self.table.rel_path}::{head}"
                site.target = g.resolve_method(cid, parts[1])
                site.name = ".".join(parts)
                return
            site.name = ".".join(parts)
            return
        if entry[0] == "module":
            mod = entry[1]
            if len(parts) == 2:
                fid = f"{mod}::{parts[1]}"
                if fid in g.functions:
                    site.target = fid
                    site.name = ".".join(parts)
                    return
                cid = f"{mod}::{parts[1]}"
                if cid in g.classes:
                    self._construction(site, cid, parts)
                    return
            if len(parts) == 3:
                # mod.Cls.method(obj)
                cid = f"{mod}::{parts[1]}"
                if cid in g.classes:
                    site.target = g.resolve_method(cid, parts[2])
                    site.name = ".".join(parts)
                    return
            site.name = ".".join(parts)
            return
        if entry[0] == "symbol":
            _kind, mod, name = entry
            if len(parts) == 1:
                fid = f"{mod}::{name}"
                if fid in g.functions:
                    site.target = fid
                    site.name = f"{mod}::{name}"
                    return
                if fid in g.classes:
                    self._construction(site, fid, parts)
                    return
                site.name = name
                return
            if len(parts) == 2:
                cid = f"{mod}::{name}"
                if cid in g.classes:
                    site.target = g.resolve_method(cid, parts[1])
                    site.name = f"{cid}.{parts[1]}"
                    return
            site.name = ".".join(parts)
            return
        # external import
        site.name = ".".join([entry[1], *parts[1:]])

    def _construction(self, site: CallSite, class_id: str,
                      parts) -> None:
        site.construct = True
        site.target = class_id
        site.name = ".".join(parts)


# ---------------------------------------------------------------------------
# Build + on-disk cache
# ---------------------------------------------------------------------------

def tree_digest(sources: Sequence) -> str:
    """Content hash of ``[(rel_path, source_text)]`` (order-free)."""
    h = hashlib.sha256()
    for rel, source in sorted(sources):
        h.update(rel.encode())
        h.update(b"\0")
        h.update(hashlib.sha256(source.encode()).digest())
    return h.hexdigest()


def build_graph(
    parsed: Sequence,
    *,
    package: str,
    sources: Optional[Sequence] = None,
    cache_dir=None,
) -> ProjectGraph:
    """Build (or load from cache) the project graph.

    *parsed* is ``[(rel_path, ast_tree)]``; *sources* is the matching
    ``[(rel_path, source_text)]`` used only for the cache key.  With a
    *cache_dir*, the built graph is pickled keyed on the source-tree
    hash and the analysis pass is skipped entirely on a key hit —
    unrelated (doc-only) changes re-use the artifact.
    """
    cache_path = None
    if cache_dir is not None and sources is not None:
        key = tree_digest(sources)
        cache_dir = Path(cache_dir)
        cache_path = cache_dir / f"graph-v{GRAPH_SCHEMA}-{key[:24]}.pkl"
        if cache_path.exists():
            try:
                with cache_path.open("rb") as fh:
                    cached = pickle.load(fh)
                if isinstance(cached, ProjectGraph) \
                        and cached.package == package:
                    return cached
            except Exception:
                pass  # unreadable cache: rebuild below
    graph = _GraphBuilder(package, parsed).build()
    if cache_path is not None:
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
            for stale in cache_dir.glob("graph-*.pkl"):
                if stale != cache_path:
                    stale.unlink(missing_ok=True)
            tmp = cache_path.with_suffix(".tmp")
            with tmp.open("wb") as fh:
                pickle.dump(graph, fh, pickle.HIGHEST_PROTOCOL)
            tmp.replace(cache_path)
        except OSError:
            pass  # cache is best-effort
    return graph


__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "HeldContext",
    "MODULE_BODY",
    "ProjectGraph",
    "RngEscape",
    "build_graph",
    "tree_digest",
]
