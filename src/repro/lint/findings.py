"""Findings and suppression directives for the lint subsystem.

A :class:`Finding` is one rule violation at one source location.  Its
identity for baseline matching is ``(rule, path, message)`` — line
numbers shift too easily under unrelated edits to be part of the key,
so a grandfathered finding stays grandfathered when code above it moves.

Suppression is explicit and greppable: a ``# lint: disable=ID`` comment
on the flagged line (or a standalone comment on the line directly
above) silences that rule there, ideally followed by a reason::

    record = {"ts": time.time()}  # lint: disable=DET001 - journal timestamp

Suppressed findings are still collected (and counted in the JSON
output) so ``--format json`` can audit every disable in the tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# lint: disable=DET001`` or ``# lint: disable=DET001,CONC002``.
_DIRECTIVE_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Z]{3,5}\d{3}(?:\s*,\s*[A-Z]{3,5}\d{3})*)"
)


class LintConfigError(Exception):
    """Bad lint configuration (unknown rule id, malformed baseline…).

    The CLI maps this to exit status 2, mirroring the ``suite`` and
    ``baseline`` commands' invalid-configuration convention.
    """


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    #: True when a ``# lint: disable`` comment covers this finding.
    suppressed: bool = False
    #: True when the committed baseline grandfathers this finding.
    baselined: bool = False
    #: Source→sink call chain for whole-program findings
    #: (DET004/DET005/CONC00x): ``[{func, path, line, note}]``, root
    #: first, sink last.  Empty for single-module findings.
    chain: list = field(default_factory=list)

    @property
    def key(self) -> tuple:
        """Baseline-matching identity (line numbers excluded)."""
        return (self.rule, self.path, self.message)

    @property
    def is_new(self) -> bool:
        """Counts against the exit status (not suppressed/baselined)."""
        return not (self.suppressed or self.baselined)

    def to_json(self) -> dict:
        doc = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
        if self.chain:
            doc["chain"] = list(self.chain)
        return doc

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")


def parse_suppressions(source: str) -> dict:
    """``line number -> frozenset of rule ids disabled on that line``.

    A directive on a *standalone* comment line also covers the next
    line, so multi-line statements can be annotated above rather than
    after a continuation backslash.
    """
    disabled: dict = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(text)
        if not match:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",")
        )
        disabled[lineno] = disabled.get(lineno, frozenset()) | ids
        if text.lstrip().startswith("#"):  # standalone comment line
            nxt = lineno + 1
            disabled[nxt] = disabled.get(nxt, frozenset()) | ids
    return disabled


def apply_suppressions(findings, disabled: dict) -> None:
    """Mark findings whose line carries a matching disable directive."""
    for finding in findings:
        if finding.rule in disabled.get(finding.line, ()):
            finding.suppressed = True


__all__ = [
    "Finding",
    "LintConfigError",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "apply_suppressions",
    "parse_suppressions",
]
