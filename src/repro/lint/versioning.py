"""VER001 — result-affecting changes must bump ``CODE_VERSION``.

The sim cache (``src/repro/sim/cache.py``) keys stored results by
``CODE_VERSION`` and the committed ``baselines/`` store fingerprints
every record with it.  A change to the simulated path that forgets the
bump silently replays stale cached results and mis-attributes baseline
drift, so CI diffs the result-affecting trees against the merge-base
and fails when they changed without a bump.

This is a *repo-level*, CI-only rule: it shells out to ``git`` and is
therefore not part of the default AST rule set — enable it with
``python -m repro lint --select VER001 [--ver-base REF]``.

The result-affecting prefixes are no longer hand-maintained: the
engine passes the ``result_affecting`` list of the committed
``lint-scope.json`` (derived from the call graph, see
:mod:`repro.lint.dataflow`); :data:`RESULT_AFFECTING` below is only
the bootstrap fallback for trees without a committed scope file.
Without an explicit ``--ver-base`` the engine tries ``origin/main``
then ``main`` and *skips with a notice* when neither resolves (local
checkout, no git repo) instead of failing or silently passing; an
explicitly requested base ref that does not resolve stays a
configuration error (exit 2).
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import Iterator, Optional

from repro.lint.findings import (
    Finding,
    LintConfigError,
    SEVERITY_ERROR,
)

#: Bootstrap fallback for trees without a committed lint-scope.json;
#: the derived scope is the source of truth (and is a superset of
#: this list — see ``docs/lint.md``).
RESULT_AFFECTING = (
    "src/repro/core/",
    "src/repro/numa/",
    "src/repro/gpu/",
    "src/repro/perf/",
    "src/repro/workloads/",
)

#: The file carrying the ``CODE_VERSION = N`` declaration.
VERSION_FILE = "src/repro/sim/cache.py"

_BUMP_RE = re.compile(r"^[+-]CODE_VERSION\s*=", re.MULTILINE)


def _git(repo: Path, *args: str) -> str:
    proc = subprocess.run(
        ["git", "-C", str(repo), *args],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        raise LintConfigError(
            f"git {' '.join(args)} failed: "
            f"{proc.stderr.strip() or proc.stdout.strip()}"
        )
    return proc.stdout


class CodeVersionRule:
    """VER001 — see the module docstring."""

    id = "VER001"
    severity = SEVERITY_ERROR
    title = "result-affecting change without a CODE_VERSION bump"

    def __init__(self, base_ref: str = "origin/main",
                 prefixes: tuple = RESULT_AFFECTING) -> None:
        self.base_ref = base_ref
        self.prefixes = tuple(prefixes)

    def check_repo(self, repo_root: Path) -> Iterator[Finding]:
        repo = Path(repo_root)
        merge_base = _git(
            repo, "merge-base", self.base_ref, "HEAD"
        ).strip()
        changed = [
            line for line in _git(
                repo, "diff", "--name-only", merge_base
            ).splitlines()
            if line.startswith(self.prefixes)
        ]
        if not changed:
            return
        version_diff = _git(repo, "diff", merge_base, "--", VERSION_FILE)
        if _BUMP_RE.search(version_diff):
            return
        listed = ", ".join(sorted(changed)[:5])
        if len(changed) > 5:
            listed += f", … ({len(changed)} files)"
        yield Finding(
            rule=self.id, severity=self.severity,
            path=VERSION_FILE, line=1, col=0,
            message=(
                f"result-affecting file(s) changed since "
                f"{self.base_ref} ({listed}) but CODE_VERSION in "
                f"{VERSION_FILE} was not bumped — stale sim-cache "
                f"entries and baseline fingerprints would go undetected"
            ),
        )


def current_code_version(repo_root: Path) -> Optional[int]:
    """Parse ``CODE_VERSION`` out of the version file (None if absent)."""
    path = Path(repo_root) / VERSION_FILE
    if not path.exists():
        return None
    match = re.search(r"^CODE_VERSION\s*=\s*(\d+)", path.read_text(),
                      re.MULTILINE)
    return int(match.group(1)) if match else None


__all__ = [
    "CodeVersionRule",
    "RESULT_AFFECTING",
    "VERSION_FILE",
    "current_code_version",
]
