"""The one metric-name resolver (OBS001 and ``tools/check_docs.py``).

Metric names are stable contracts declared in
:mod:`repro.obs.metrics` and documented in ``docs/metrics.md``.  Two
consumers need to decide whether a token *is* a metric name and whether
it *resolves*:

* the **OBS001** lint rule, over string literals in Python source, and
* the docs checker, over backticked tokens in Markdown.

Both build a :class:`MetricNameResolver` from the live contract
(``SPECS`` + ``EVENT_KINDS``) so there is exactly one definition of
"known name", "known prefix" and "declared labels" in the repository.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

#: A token that *looks like* a metric: dotted lower-case segments with
#: an optional rendered label set (``link.bytes{src,dst}``).  Markdown
#: scanning wraps this in backticks; Python scanning applies it to
#: whole string literals.
METRIC_TOKEN_RE = re.compile(
    r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+(?:\{[a-z_][a-z_,]*\})?$"
)

#: The backticked-token form used when scanning Markdown text.
MARKDOWN_TOKEN_RE = re.compile(
    r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+(?:\{[a-z_][a-z_,]*\})?)`"
)


class MetricNameResolver:
    """Resolves metric-looking tokens against the declared contract."""

    def __init__(self, specs=None, event_kinds=None) -> None:
        if specs is None or event_kinds is None:
            # Late import: the lint framework itself must stay importable
            # without the simulator when scanning fixture trees.
            from repro.obs.events import EVENT_KINDS
            from repro.obs.metrics import SPECS

            specs = SPECS if specs is None else specs
            event_kinds = EVENT_KINDS if event_kinds is None else event_kinds
        self.metric_labels = {spec.name: tuple(spec.labels)
                              for spec in specs}
        self.event_kinds = frozenset(event_kinds)
        self.prefixes = (
            {name.split(".", 1)[0] for name in self.metric_labels}
            | {kind.split(".", 1)[0]
               for kind in self.event_kinds if "." in kind}
        )

    def looks_like_metric(self, token: str) -> bool:
        """Dotted lower-case with a known subsystem prefix?

        Tokens with unknown prefixes (``repro.obs.registry``,
        ``numpy.ndarray``) are module paths or similar, not metrics,
        and are never flagged.
        """
        if not METRIC_TOKEN_RE.match(token):
            return False
        name = token.partition("{")[0]
        return name.split(".", 1)[0] in self.prefixes

    def resolve(self, token: str) -> Optional[str]:
        """Problem description for *token*, or ``None`` when it is valid.

        Only call for tokens where :meth:`looks_like_metric` is true.
        Validates both the name and, when a ``{label,label}`` set is
        rendered, that the labels match the spec's declared labels.
        """
        name, _, labels_part = token.partition("{")
        if name not in self.metric_labels:
            if name in self.event_kinds and not labels_part:
                return None
            return (f"unknown metric `{token}` (not in repro.obs "
                    f"registry or event kinds)")
        if labels_part:
            rendered = tuple(labels_part.rstrip("}").split(","))
            declared = self.metric_labels[name]
            if rendered != declared:
                return (f"`{token}` labels {rendered} != spec labels "
                        f"{declared}")
        return None

    def markdown_problems(self, text: str) -> Iterable[tuple]:
        """``(token, problem)`` pairs for one Markdown document."""
        for match in MARKDOWN_TOKEN_RE.finditer(text):
            token = match.group(1)
            if not self.looks_like_metric(token):
                continue
            problem = self.resolve(token)
            if problem is not None:
                yield token, problem


__all__ = [
    "MARKDOWN_TOKEN_RE",
    "METRIC_TOKEN_RE",
    "MetricNameResolver",
]
