"""Whole-program rules over the cross-module call graph.

Unlike the per-module AST rules in :mod:`repro.lint.rules`, every rule
here consumes the :class:`~repro.lint.graph.ProjectGraph` plus the
reachability sets of :mod:`repro.lint.dataflow`, so it can see a
``time.time()`` two helper modules away from the perf model or a
blocking pipe ``recv`` three calls below an async route.  Each finding
carries the offending call :attr:`~repro.lint.findings.Finding.chain`
(root first, sink last) — rendered by ``--explain`` and in the CI
failure log.

Suppression works exactly like the AST rules: a ``# lint:
disable=<ID>`` comment *at the sink line* silences the finding, so the
annotation lives next to the code that triggers it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.lint.dataflow import (
    DEFAULT_POLICY,
    DerivedScope,
    Reachability,
    ScopePolicy,
    reach,
    reach_from_ids,
)
from repro.lint.findings import SEVERITY_ERROR, Finding
from repro.lint.graph import MODULE_BODY, ProjectGraph
from repro.lint.rules import WallClockRule


def _fn_label(fid: str) -> str:
    module, qualname = fid.split("::", 1)
    return f"{module}::{qualname}"


def _sink_chain(reached: Reachability, fid: str, line: int,
                note: str) -> list:
    """Reach chain to *fid* plus one sink step at *line*."""
    chain = reached.chain(fid)
    module = fid.split("::", 1)[0]
    chain.append({
        "func": fid.split("::", 1)[1], "path": module,
        "line": line, "note": note,
    })
    return chain


class ProjectRule:
    """Base: one id/severity/title, one whole-graph check."""

    id = "XXX000"
    severity = SEVERITY_ERROR
    title = ""

    def check_project(self, graph: ProjectGraph, policy: ScopePolicy,
                      scope: DerivedScope) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, col: int, message: str,
                chain: Optional[list] = None) -> Finding:
        return Finding(
            rule=self.id, severity=self.severity, path=path,
            line=line, col=col, message=message,
            chain=list(chain or ()),
        )


class TransitiveWallClockRule(ProjectRule):
    """DET004 — non-deterministic inputs reaching the simulated path.

    Flags wall-clock reads, ``os.urandom`` and environment lookups in
    any function *wide-reachable* from the result-affecting roots
    (``run_workload``, the engine registry, the coherence protocols) —
    including through helper modules DET001's per-file scope never
    sees.  The DET001 :attr:`~repro.lint.rules.WallClockRule.ALLOWLIST`
    is honored at the sink: orchestration modules whose whole purpose
    is wall-clock handling stay exempt.
    """

    id = "DET004"
    severity = SEVERITY_ERROR
    title = "non-deterministic input reaches the result-affecting set"

    #: Environment/entropy sources beyond the DET001 wall-clock set.
    EXTRA_SOURCES = frozenset({
        "os.urandom", "os.getenv", "os.environ.get",
    })

    @property
    def sources(self) -> frozenset:
        return WallClockRule.BANNED | self.EXTRA_SOURCES

    def check_project(self, graph, policy, scope):
        reached = scope.reachable
        if reached is None:
            return
        sources = self.sources
        seen = set()
        for fid in sorted(reached.entries):
            fn = graph.functions[fid]
            if fn.module in WallClockRule.ALLOWLIST:
                continue
            for call in fn.calls:
                if call.name not in sources:
                    continue
                key = (fn.module, call.line, call.name)
                if key in seen:
                    continue
                seen.add(key)
                root = reached.chain(fid)[0]["func"]
                yield self.finding(
                    fn.module, call.line, call.col,
                    f"{call.name}() is reachable from the "
                    f"result-affecting root {root} (sink in "
                    f"{_fn_label(fid)}); a non-deterministic value "
                    f"can flow into simulation results",
                    chain=_sink_chain(reached, fid, call.line,
                                      f"calls {call.name}()"),
                )


class RngEscapeRule(ProjectRule):
    """DET005 — unseeded RNG objects escaping into the simulated path.

    An unseeded ``random.Random()`` / ``numpy.random.default_rng()``
    passed as an argument into any function of the result-affecting
    set injects interpreter-state-dependent randomness one call level
    away from where DET002 looks.
    """

    id = "DET005"
    severity = SEVERITY_ERROR
    title = "unseeded RNG object escapes into the simulated path"

    def check_project(self, graph, policy, scope):
        reached = scope.reachable
        if reached is None:
            return
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            for escape in fn.rng_escapes:
                into_scope = (
                    (escape.target is not None
                     and escape.target in reached)
                    or fid in reached
                )
                if not into_scope:
                    continue
                callee = escape.callee_name or (
                    _fn_label(escape.target) if escape.target else "?"
                )
                if escape.target is not None \
                        and escape.target in reached:
                    chain = _sink_chain(
                        reached, escape.target, escape.line,
                        f"receives unseeded {escape.ctor}()",
                    )
                elif fid in reached:
                    chain = _sink_chain(
                        reached, fid, escape.line,
                        f"passes unseeded {escape.ctor}() to {callee}",
                    )
                else:
                    chain = []
                yield self.finding(
                    fn.module, escape.line, escape.col,
                    f"unseeded {escape.ctor}() is passed into "
                    f"{callee} on the result-affecting path; seed it "
                    f"explicitly so runs replay exactly",
                    chain=chain,
                )


class AsyncBlockingRule(ProjectRule):
    """CONC001 — blocking calls reachable from event-loop code.

    Roots are every ``async def`` in the policy's async modules plus
    the policy's extra event-loop classes (the serve dispatcher calls
    its sync handlers directly on the loop).  Reachability runs in
    *calls* mode, so an ``asyncio.to_thread(fn)`` / executor hop —
    which passes ``fn`` as a value, producing no call edge — genuinely
    ends the chain: work behind an executor is not flagged.
    """

    id = "CONC001"
    severity = SEVERITY_ERROR
    title = "blocking call reachable from an async route"

    #: Exact blocking callables.
    BLOCKING = frozenset({
        "time.sleep",
        "subprocess.run", "subprocess.call",
        "subprocess.check_call", "subprocess.check_output",
        "socket.create_connection",
    })
    #: Any call into the sync HTTP client blocks the loop.
    BLOCKING_PREFIXES = ("http.client.",)
    #: Unresolved attribute calls matching these suffixes are treated
    #: as pipe/socket receives (``conn.recv()``) — a documented
    #: heuristic, suppressible at the sink when the object is not a
    #: blocking endpoint.
    BLOCKING_SUFFIXES = (".recv", ".recv_bytes")

    def _blocking(self, name: Optional[str]) -> bool:
        if name is None:
            return False
        if name in self.BLOCKING:
            return True
        if name.startswith(self.BLOCKING_PREFIXES):
            return True
        return name.endswith(self.BLOCKING_SUFFIXES)

    def _roots(self, graph: ProjectGraph, policy: ScopePolicy) -> list:
        roots = [
            fid for fid, fn in graph.functions.items()
            if fn.is_async and fn.module.startswith(
                tuple(policy.async_prefixes))
        ]
        for module, name in policy.async_extra_roots:
            cid = f"{module}::{name}"
            if cid in graph.classes:
                roots.extend(graph.class_methods(cid))
            elif f"{module}::{name}" in graph.functions:
                roots.append(f"{module}::{name}")
        return sorted(set(roots))

    def check_project(self, graph, policy, scope):
        roots = self._roots(graph, policy)
        if not roots:
            return
        reached = reach_from_ids(graph, roots, mode="calls")
        seen = set()
        for fid in sorted(reached.entries):
            fn = graph.functions[fid]
            for call in fn.calls:
                if call.target is not None \
                        or not self._blocking(call.name):
                    continue
                key = (fn.module, call.line, call.name)
                if key in seen:
                    continue
                seen.add(key)
                root = reached.chain(fid)[0]["func"]
                yield self.finding(
                    fn.module, call.line, call.col,
                    f"{call.name}() blocks the event loop and is "
                    f"reachable from async route {root} (sink in "
                    f"{_fn_label(fid)}); hop through "
                    f"asyncio.to_thread or an executor",
                    chain=_sink_chain(reached, fid, call.line,
                                      f"calls {call.name}()"),
                )


class ForkSharedStateRule(ProjectRule):
    """CONC002 — module globals written on both sides of the fork.

    A module-level mutable written by both a pool-worker code path and
    a parent-side path diverges silently after ``fork``: each process
    mutates its own copy while the code reads as if there were one.
    Writes are tracked via ``global`` declarations, subscript/attribute
    stores on module-level names, and in-place mutator calls
    (``NAME.append(...)``).
    """

    id = "CONC002"
    severity = SEVERITY_ERROR
    title = "module global written from both worker and parent paths"

    def check_project(self, graph, policy, scope):
        worker = reach(graph, policy.worker_roots, mode="calls")
        parent = reach(graph, policy.parent_roots, mode="calls")
        writes: dict = {}  # (module, name) -> {"worker": [...], ...}
        for side, reached in (("worker", worker), ("parent", parent)):
            for fid in reached.entries:
                fn = graph.functions[fid]
                if fn.qualname == MODULE_BODY:
                    continue  # import-time init runs before the fork
                for name, line, col in fn.global_writes:
                    slot = writes.setdefault(
                        (fn.module, name), {"worker": [], "parent": []}
                    )
                    slot[side].append((fid, line, col))
        for (module, name), slot in sorted(writes.items()):
            if not slot["worker"] or not slot["parent"]:
                continue
            w_fid, w_line, w_col = min(slot["worker"],
                                       key=lambda e: (e[1], e[2]))
            p_fid, p_line, _p_col = min(slot["parent"],
                                        key=lambda e: (e[1], e[2]))
            chain = _sink_chain(worker, w_fid, w_line,
                                f"worker-side write of {name}")
            chain.extend(
                {**step,
                 "note": f"parent-side: {step['note']}"
                 if step["note"] != "root" else "parent-side root"}
                for step in _sink_chain(parent, p_fid, p_line,
                                        f"parent-side write of {name}")
            )
            yield self.finding(
                module, w_line, w_col,
                f"module global {name!r} is written from a pool-worker "
                f"path ({_fn_label(w_fid)}) and a parent-side path "
                f"({_fn_label(p_fid)}:{p_line}); after fork each "
                f"process mutates its own copy",
                chain=chain,
            )


class HeldAcrossForkRule(ProjectRule):
    """CONC003 — locks/open files held across a fork point.

    Forking while a lock is held clones the lock in its locked state
    into the child (instant deadlock on the next acquire); an open
    handle shared across the fork interleaves writes.  A fork point is
    a ``*.Process(...)`` construction (or ``os.fork``) in the policy's
    fork modules — held ``with`` blocks are checked for calls that
    reach one, directly or transitively.
    """

    id = "CONC003"
    severity = SEVERITY_ERROR
    title = "lock or open file held across a fork point"

    FORK_SUFFIX = ".Process"
    FORK_EXACT = frozenset({"os.fork"})

    def _is_fork_call(self, name: Optional[str]) -> bool:
        return name is not None and (
            name in self.FORK_EXACT or name.endswith(self.FORK_SUFFIX)
        )

    def _fork_functions(self, graph: ProjectGraph,
                        policy: ScopePolicy) -> set:
        out = set()
        for fid, fn in graph.functions.items():
            if not fn.module.startswith(tuple(policy.fork_modules)):
                continue
            if any(self._is_fork_call(c.name) for c in fn.calls):
                out.add(fid)
        return out

    def check_project(self, graph, policy, scope):
        fork_fns = self._fork_functions(graph, policy)
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            if not fn.module.startswith(tuple(policy.fork_modules)):
                continue
            for held in fn.held_contexts:
                for call in fn.calls:
                    if not held.line <= call.line <= held.end_line:
                        continue
                    chain = self._fork_chain(
                        graph, fn, call, fork_fns)
                    if chain is None:
                        continue
                    yield self.finding(
                        fn.module, held.line, held.col,
                        f"{held.kind} {held.what!r} is held across a "
                        f"fork point ({chain[-1]['func']}); the child "
                        f"inherits it in its current state",
                        chain=[{
                            "func": fn.qualname, "path": fn.module,
                            "line": held.line,
                            "note": f"holds {held.kind} {held.what!r}",
                        }] + chain,
                    )
                    break  # one finding per held block

    def _fork_chain(self, graph, fn, call, fork_fns) -> Optional[List]:
        if self._is_fork_call(call.name):
            return [{
                "func": fn.qualname, "path": fn.module,
                "line": call.line, "note": f"calls {call.name}()",
            }]
        if call.target is None or call.construct:
            return None
        sub = reach_from_ids(graph, [call.target], mode="calls")
        hit = next((f for f in sorted(sub.entries) if f in fork_fns),
                   None)
        if hit is None:
            return None
        chain = sub.chain(hit)
        chain[0]["line"] = call.line
        chain[0]["note"] = "called while held"
        target_fn = graph.functions[hit]
        fork_call = next(c for c in target_fn.calls
                         if self._is_fork_call(c.name))
        chain.append({
            "func": target_fn.qualname, "path": target_fn.module,
            "line": fork_call.line,
            "note": f"calls {fork_call.name}()",
        })
        return chain


#: The graph rules run as part of the default selection.
PROJECT_RULES = (
    TransitiveWallClockRule,
    RngEscapeRule,
    AsyncBlockingRule,
    ForkSharedStateRule,
    HeldAcrossForkRule,
)

#: Rule id of the scope-drift gate (implemented in the engine: it
#: compares the committed ``lint-scope.json`` against the derivation,
#: which needs the repo root rather than the graph alone).
SCOPE_RULE_ID = "VER002"


def scope_drift_findings(problems, scope_rel_path: str) -> list:
    """VER002 findings from :func:`~repro.lint.dataflow.diff_scope`."""
    return [
        Finding(
            rule=SCOPE_RULE_ID, severity=SEVERITY_ERROR,
            path=scope_rel_path, line=1, col=0,
            message=(
                f"{problem} — regenerate with "
                f"`python -m repro lint --update-scope` and commit "
                f"the diff"
            ),
        )
        for problem in problems
    ]


__all__ = [
    "AsyncBlockingRule",
    "ForkSharedStateRule",
    "HeldAcrossForkRule",
    "PROJECT_RULES",
    "ProjectRule",
    "RngEscapeRule",
    "SCOPE_RULE_ID",
    "TransitiveWallClockRule",
    "scope_drift_findings",
    "DEFAULT_POLICY",
]
