"""AST-visitor lint rules enforcing the reproduction's invariants.

Every rule subclasses :class:`Rule` and yields
:class:`~repro.lint.findings.Finding` objects from
:meth:`Rule.check_module`.  The rules are deliberately repo-specific:
they encode the invariants the whole reproduction chain rests on —
bit-identical engine results, the ``CODE_VERSION``-keyed sim cache, and
the bit-exact baseline gates (see ``docs/lint.md`` for the catalogue).

Module paths are matched *relative to the scanned package root* with
posix separators (``core/imst.py``), so the rules work unchanged on
fixture trees in tests.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.lint.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)


class ModuleContext:
    """One parsed module handed to every AST rule."""

    def __init__(self, rel_path: str, source: str,
                 tree: Optional[ast.AST] = None) -> None:
        self.rel_path = rel_path  # posix, relative to the scan root
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source)


class Rule:
    """Base class: one rule id, one severity, one module-level check."""

    id = "XXX000"
    severity = SEVERITY_ERROR
    title = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            rule=self.id, severity=self.severity, path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _import_aliases(tree: ast.AST) -> dict:
    """``local name -> canonical dotted name`` for a module's imports.

    ``import time`` maps ``time -> time``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``;
    ``import numpy as np`` maps ``np -> numpy``.
    """
    aliases: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _resolve_call_name(func: ast.AST, aliases: dict) -> Optional[str]:
    """Canonical dotted name of a call target, or None."""
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


class WallClockRule(Rule):
    """DET001 — no wall-clock reads on the deterministic simulated path.

    ``ENGINE_REFERENCE`` and ``ENGINE_VECTORIZED`` must produce
    bit-identical counters and the sim cache replays results across
    runs, so nothing under the simulated path may observe real time.
    Orchestration code that *measures* wall time (the fault-tolerant
    runner's timeouts) is exempt via :attr:`ALLOWLIST`.
    """

    id = "DET001"
    severity = SEVERITY_ERROR
    title = "wall-clock read on the deterministic simulated path"

    #: Path prefixes forming the deterministic simulated path (plus the
    #: obs layer, whose digests feed bit-exact baseline records, and the
    #: serve layer, kept in scope so any future leak of wall time into a
    #: result payload needs an explicit allowlist entry here).
    SCOPE = ("core/", "numa/", "gpu/", "perf/", "workloads/", "memory/",
             "sim/", "obs/", "serve/")
    #: Modules whose entire purpose is wall-clock orchestration:
    #: the runner's timeouts/backoff, the chaos drill's hang injection,
    #: the job service's latency metrics + client-facing timestamps
    #: (serve/jobs.py) and client-side polling deadlines
    #: (serve/client.py), and the distributed-trace spill (obs/trace.py),
    #: whose span records are timestamped observability metadata — none
    #: of which feed simulation results.
    ALLOWLIST = ("sim/runner.py", "sim/chaos.py", "serve/jobs.py",
                 "serve/client.py", "obs/trace.py")

    BANNED = frozenset({
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.rel_path.startswith(self.SCOPE):
            return
        if ctx.rel_path in self.ALLOWLIST:
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve_call_name(node.func, aliases)
            if name in self.BANNED:
                yield self.finding(
                    ctx, node,
                    f"{name}() reads the wall clock inside the "
                    f"deterministic simulated path; results must not "
                    f"depend on real time",
                )


class UnseededRandomRule(Rule):
    """DET002 — all randomness must flow from an explicit seed.

    The process-global RNGs (``random.random`` et al.,
    ``numpy.random.<fn>``) and unseeded generator constructions
    (``random.Random()``, ``numpy.random.default_rng()``) make results
    depend on interpreter state, breaking replay and the bit-exact
    regression gates.
    """

    id = "DET002"
    severity = SEVERITY_ERROR
    title = "unseeded or process-global randomness"

    #: Module-level functions of :mod:`random` that use the global RNG.
    GLOBAL_RANDOM = frozenset({
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    })
    #: Legacy global-state entry points of :mod:`numpy.random`.
    GLOBAL_NUMPY = frozenset({
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "normal",
        "uniform", "poisson", "binomial", "exponential",
    })
    #: Constructors that take their seed as the first argument.
    SEEDED_CTORS = frozenset({
        "random.Random", "random.SystemRandom",
        "numpy.random.default_rng", "numpy.random.RandomState",
    })

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve_call_name(node.func, aliases)
            if name is None:
                continue
            if name in self.SEEDED_CTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        f"{name}() constructed without an explicit "
                        f"seed; pass a seed so runs replay exactly",
                    )
                continue
            if name.startswith("random."):
                fn = name.split(".", 1)[1]
                if fn in self.GLOBAL_RANDOM:
                    yield self.finding(
                        ctx, node,
                        f"{name}() uses the process-global RNG; use an "
                        f"explicitly seeded random.Random / "
                        f"numpy default_rng instead",
                    )
            elif name.startswith("numpy.random."):
                fn = name.split(".", 2)[2]
                if fn in self.GLOBAL_NUMPY:
                    yield self.finding(
                        ctx, node,
                        f"{name}() uses numpy's global RNG state; use "
                        f"an explicitly seeded "
                        f"numpy.random.default_rng(seed) instead",
                    )


class UnsortedIterationRule(Rule):
    """DET003 — set/dict-key iteration feeding output must be sorted.

    Journals, baseline records and reports are diffed byte-for-byte
    across runs and machines; iterating a bare ``set`` (hash-randomised
    for strings) or ``dict.keys()`` into them makes the output order an
    accident.  Wrap the iterable in ``sorted(...)``.
    """

    id = "DET003"
    severity = SEVERITY_WARNING
    title = "unordered iteration feeding journal/baseline/report output"

    #: The modules whose output is diffed across runs.
    SCOPE = (
        "sim/journal.py", "obs/baseline.py", "obs/report.py",
        "obs/export.py", "obs/regress.py", "obs/summary.py",
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel_path not in self.SCOPE:
            return
        for node in ast.walk(ctx.tree):
            iters: Sequence[ast.AST] = ()
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = (node.iter,)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters = tuple(gen.iter for gen in node.generators)
            for it in iters:
                problem = self._unordered(it)
                if problem:
                    yield self.finding(
                        ctx, it,
                        f"iterating {problem} without sorted(...) makes "
                        f"the emitted order non-deterministic",
                    )

    @staticmethod
    def _unordered(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                return "dict.keys()"
            if isinstance(func, ast.Name) and func.id in ("set",
                                                          "frozenset"):
                return f"a bare {func.id}(...)"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        return None


class EnumGroup:
    """One named set of enum-like constants a module matches on."""

    def __init__(self, name: str, members: Sequence[str]) -> None:
        self.name = name
        self.members = frozenset(members)


class ExhaustivenessRule(Rule):
    """COH001 — every (state, event) arm of the protocol enums handled.

    The GPU-VI/IMST sharing states and the coherence-protocol selector
    are int/str constants matched with ``if/elif`` chains.  Adding a
    new state that an existing chain silently falls through is exactly
    the class of bug that corrupts traffic counters without failing a
    test, so this rule demands every match site be exhaustive: an
    ``else`` arm, full member coverage, or an explicit terminal
    catch-all (``return``/``raise``) directly after the chain.
    """

    id = "COH001"
    severity = SEVERITY_ERROR
    title = "non-exhaustive match over a protocol enum"

    #: Modules with an enum-like constant group to check, keyed by the
    #: path relative to the scanned package root.
    GROUPS = {
        "core/imst.py": EnumGroup(
            "IMST sharing state",
            ("UNCACHED", "PRIVATE", "READ_SHARED", "RW_SHARED"),
        ),
        "core/coherence.py": EnumGroup(
            "coherence protocol",
            ("COHERENCE_NONE", "COHERENCE_SOFTWARE",
             "COHERENCE_HARDWARE", "COHERENCE_DIRECTORY"),
        ),
    }

    #: Minimum distinct members a chain must mention before it is
    #: treated as a match over the group (single-member guards are
    #: ordinary conditionals, not matches).
    MIN_MATCHED = 2

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        group = self.GROUPS.get(ctx.rel_path)
        if group is None:
            return
        yield from self._check_dict_displays(ctx, group)
        for fn in ast.walk(ctx.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_bodies(ctx, group, fn)

    # -- dict displays over the group (e.g. STATE_NAMES) ----------------

    def _check_dict_displays(self, ctx, group) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            key_names = [k.id for k in node.keys
                         if isinstance(k, ast.Name)]
            matched = group.members & set(key_names)
            if len(matched) < self.MIN_MATCHED:
                continue
            missing = group.members - set(key_names)
            if missing:
                yield self.finding(
                    ctx, node,
                    f"dict over the {group.name} enum is missing "
                    f"member(s): {', '.join(sorted(missing))}",
                )
            extras = [k for k in key_names
                      if k not in group.members and k.isupper()]
            for extra in extras:
                yield self.finding(
                    ctx, node,
                    f"dict over the {group.name} enum includes "
                    f"{extra}, which is not declared in the COH001 "
                    f"enum group — update ExhaustivenessRule.GROUPS",
                )

    # -- if/elif chains and guard runs -----------------------------------

    def _check_bodies(self, ctx, group, fn) -> Iterator[Finding]:
        for body in self._statement_lists(fn):
            idx = 0
            while idx < len(body):
                stmt = body[idx]
                if not (isinstance(stmt, ast.If)
                        and self._members_in(stmt.test, group)):
                    idx += 1
                    continue
                # An if/elif chain is one statement; a guard run is a
                # maximal sequence of member-testing Ifs whose bodies
                # all terminate.
                covered, has_else, arms_term = self._flatten_chain(
                    stmt, group)
                end = idx + 1
                if not has_else and self._terminates(stmt.body) \
                        and not stmt.orelse:
                    while end < len(body):
                        nxt = body[end]
                        if (isinstance(nxt, ast.If) and not nxt.orelse
                                and self._members_in(nxt.test, group)
                                and self._terminates(nxt.body)):
                            covered |= self._members_in(nxt.test, group)
                            end += 1
                        else:
                            break
                yield from self._judge(
                    ctx, stmt, group, covered, has_else, arms_term,
                    follower=body[end] if end < len(body) else None,
                )
                idx = end

    def _judge(self, ctx, stmt, group, covered, has_else, arms_term,
               follower) -> Iterator[Finding]:
        matched = covered & group.members
        if len(matched) < self.MIN_MATCHED:
            return
        if has_else or matched == group.members:
            return
        # No else and partial coverage: only an explicit terminal
        # catch-all directly after the chain keeps this sound — and it
        # is only a catch-all when every matched arm terminates, so the
        # follower runs exclusively for the unmatched members.
        if arms_term and isinstance(follower, (ast.Return, ast.Raise)):
            return
        missing = sorted(group.members - matched)
        yield self.finding(
            ctx, stmt,
            f"match over the {group.name} enum handles "
            f"{len(matched)}/{len(group.members)} members and has no "
            f"else/catch-all; missing: {', '.join(missing)}",
        )

    def _flatten_chain(self, stmt: ast.If, group):
        covered = set(self._members_in(stmt.test, group))
        node = stmt
        has_else = False
        arms_term = self._terminates(stmt.body)
        while node.orelse:
            if len(node.orelse) == 1 and isinstance(node.orelse[0],
                                                    ast.If):
                node = node.orelse[0]
                covered |= self._members_in(node.test, group)
                arms_term = arms_term and self._terminates(node.body)
            else:
                has_else = True
                break
        return covered, has_else, arms_term

    @staticmethod
    def _members_in(test: ast.AST, group) -> frozenset:
        found = set()
        for node in ast.walk(test):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, rhs in zip(node.ops, node.comparators):
                    if isinstance(op, ast.In) and isinstance(
                            rhs, (ast.Tuple, ast.List, ast.Set)):
                        operands.extend(rhs.elts)
                for operand in operands:
                    if isinstance(operand, ast.Name) \
                            and operand.id in group.members:
                        found.add(operand.id)
        return frozenset(found)

    @staticmethod
    def _terminates(body) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    @staticmethod
    def _statement_lists(fn):
        """Every statement list inside *fn* (bodies, orelse, finally).

        Elif continuations are *not* yielded as their own lists — the
        chain is judged once, from its head — and nested function /
        class bodies are skipped because the caller walks them as
        separate scopes.
        """
        stack = [fn.body]
        while stack:
            body = stack.pop()
            yield body
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.If):
                    node = stmt
                    stack.append(node.body)
                    while (len(node.orelse) == 1
                           and isinstance(node.orelse[0], ast.If)):
                        node = node.orelse[0]
                        stack.append(node.body)
                    if node.orelse:
                        stack.append(node.orelse)
                    continue
                for attr in ("body", "orelse", "finalbody"):
                    child = getattr(stmt, attr, None)
                    if child and isinstance(child, list):
                        stack.append(child)
                for handler in getattr(stmt, "handlers", ()):
                    stack.append(handler.body)


class MetricNameRule(Rule):
    """OBS001 — metric-name string literals must resolve.

    Every string literal that *looks like* a metric (dotted lower-case
    with a known subsystem prefix, see
    :class:`~repro.lint.resolver.MetricNameResolver`) must name a
    declared metric or trace-event kind.  This is the AST half of the
    metric contract; ``tools/check_docs.py`` applies the same resolver
    to the Markdown side.
    """

    id = "OBS001"
    severity = SEVERITY_ERROR
    title = "unresolvable metric name literal"

    def __init__(self, resolver=None) -> None:
        self._resolver = resolver

    @property
    def resolver(self):
        if self._resolver is None:
            from repro.lint.resolver import MetricNameResolver

            self._resolver = MetricNameResolver()
        return self._resolver

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)):
                continue
            token = node.value
            if not self.resolver.looks_like_metric(token):
                continue
            problem = self.resolver.resolve(token)
            if problem is not None:
                yield self.finding(ctx, node, problem)


#: The AST rules run by default (VER001 is repo-level and CI-only; see
#: :mod:`repro.lint.versioning`).
DEFAULT_RULES = (
    WallClockRule,
    UnseededRandomRule,
    UnsortedIterationRule,
    ExhaustivenessRule,
    MetricNameRule,
)


__all__ = [
    "DEFAULT_RULES",
    "EnumGroup",
    "ExhaustivenessRule",
    "MetricNameRule",
    "ModuleContext",
    "Rule",
    "UnseededRandomRule",
    "UnsortedIterationRule",
    "WallClockRule",
]
