"""``repro.lint`` — determinism & invariant lint for the reproduction.

The reproduction chain rests on invariants that ordinary tests cannot
economically cover: bit-identical ``ENGINE_REFERENCE`` /
``ENGINE_VECTORIZED`` results, the ``CODE_VERSION``-keyed sim cache,
and the bit-exact baseline gates of ``docs/regression.md``.  This
package turns those conventions into machine-checked guarantees — an
AST-visitor rule framework, a whole-program call graph
(:mod:`repro.lint.graph` / :mod:`repro.lint.dataflow`), plus
repo-specific rules:

========  ==============================================================
DET001    no wall-clock reads on the deterministic simulated path
DET002    no process-global or unseeded randomness under ``src/repro/``
DET003    no unsorted set/dict-key iteration feeding journal/report output
DET004    no wall-clock/entropy/env value reaching the result-affecting
          set through *any* call chain (transitive taint)
DET005    no unseeded RNG object escaping into simulated-path calls
COH001    exhaustive matches over the GPU-VI/IMST protocol enums
OBS001    metric-name string literals resolve against the contract
CONC001   no blocking call reachable from an async serve route without
          an ``asyncio.to_thread``/executor hop
CONC002   no module global written from both pool-worker and
          parent-side code paths (fork safety)
CONC003   no lock/open file handle held across a fork point
VER001    result-affecting diffs must bump ``CODE_VERSION`` (CI-only)
VER002    committed ``lint-scope.json`` matches the derived
          result-affecting scope
========  ==============================================================

Run it as ``python -m repro lint``; suppress a single finding with a
``# lint: disable=<id>`` comment (with a reason) or grandfather batches
via the committed ``lint-baseline.json``.  Whole-program findings carry
the offending source→sink call chain — ``python -m repro lint
--explain ID:path:line`` prints it, ``--graph-out`` dumps the graph.
``docs/lint.md`` documents every rule, its rationale, the call-graph
precision contract and the ``lint-scope.json`` workflow.  The OBS001
name resolver is also what ``tools/check_docs.py`` uses for Markdown,
so Python source and docs agree on one definition of "known metric".
"""

from repro.lint.baseline import load_baseline, save_baseline
from repro.lint.dataflow import (
    DEFAULT_POLICY,
    ScopePolicy,
    derive_scope,
    reach,
    render_chain,
    save_scope,
)
from repro.lint.engine import (
    ALL_RULE_IDS,
    DEFAULT_RULE_IDS,
    SCOPE_FILE,
    LintResult,
    discover_repo_root,
    run_lint,
)
from repro.lint.findings import (
    Finding,
    LintConfigError,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
)
from repro.lint.graph import ProjectGraph, build_graph
from repro.lint.projectrules import PROJECT_RULES
from repro.lint.resolver import MetricNameResolver
from repro.lint.rules import DEFAULT_RULES, ModuleContext, Rule
from repro.lint.versioning import CodeVersionRule

__all__ = [
    "ALL_RULE_IDS",
    "DEFAULT_POLICY",
    "DEFAULT_RULES",
    "DEFAULT_RULE_IDS",
    "CodeVersionRule",
    "Finding",
    "LintConfigError",
    "LintResult",
    "MetricNameResolver",
    "ModuleContext",
    "PROJECT_RULES",
    "ProjectGraph",
    "Rule",
    "SCOPE_FILE",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "ScopePolicy",
    "build_graph",
    "derive_scope",
    "discover_repo_root",
    "load_baseline",
    "reach",
    "render_chain",
    "run_lint",
    "save_baseline",
    "save_scope",
]
