"""``repro.lint`` — determinism & invariant lint for the reproduction.

The reproduction chain rests on invariants that ordinary tests cannot
economically cover: bit-identical ``ENGINE_REFERENCE`` /
``ENGINE_VECTORIZED`` results, the ``CODE_VERSION``-keyed sim cache,
and the bit-exact baseline gates of ``docs/regression.md``.  This
package turns those conventions into machine-checked guarantees — an
AST-visitor rule framework plus repo-specific rules:

========  ==============================================================
DET001    no wall-clock reads on the deterministic simulated path
DET002    no process-global or unseeded randomness under ``src/repro/``
DET003    no unsorted set/dict-key iteration feeding journal/report output
COH001    exhaustive matches over the GPU-VI/IMST protocol enums
OBS001    metric-name string literals resolve against the contract
VER001    result-affecting diffs must bump ``CODE_VERSION`` (CI-only)
========  ==============================================================

Run it as ``python -m repro lint``; suppress a single finding with a
``# lint: disable=<id>`` comment (with a reason) or grandfather batches
via the committed ``lint-baseline.json``.  ``docs/lint.md`` documents
every rule, its rationale and its suppression story.  The OBS001 name
resolver is also what ``tools/check_docs.py`` uses for Markdown, so
Python source and docs agree on one definition of "known metric".
"""

from repro.lint.baseline import load_baseline, save_baseline
from repro.lint.engine import (
    ALL_RULE_IDS,
    DEFAULT_RULE_IDS,
    LintResult,
    run_lint,
)
from repro.lint.findings import (
    Finding,
    LintConfigError,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
)
from repro.lint.resolver import MetricNameResolver
from repro.lint.rules import DEFAULT_RULES, ModuleContext, Rule
from repro.lint.versioning import CodeVersionRule

__all__ = [
    "ALL_RULE_IDS",
    "DEFAULT_RULES",
    "DEFAULT_RULE_IDS",
    "CodeVersionRule",
    "Finding",
    "LintConfigError",
    "LintResult",
    "MetricNameResolver",
    "ModuleContext",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "load_baseline",
    "run_lint",
    "save_baseline",
]
