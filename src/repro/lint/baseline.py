"""The committed lint baseline (``lint-baseline.json``).

A baseline grandfathers known findings so the linter can gate *new*
problems immediately while existing ones are burned down.  The format
is a multiset of finding keys — ``(rule, path, message)`` with a count
— deliberately excluding line numbers so unrelated edits above a
grandfathered finding don't un-grandfather it.

Version 2: ``path`` is repo-relative POSIX (``src/repro/core/foo.py``),
normalised by the engine regardless of the invocation cwd, so a
baseline recorded from the repo root matches a run from ``src/`` or
CI.  Version-1 baselines (scan-relative paths) are rejected with a
configuration error rather than silently mismatching.

Round trip: ``python -m repro lint --update-baseline`` records today's
findings; a later plain run is then clean until a *new* finding
appears.  The committed baseline for this repository ships empty: every
rule either passes or carries an explicit inline ``# lint: disable``
with a reason.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Union

from repro.lint.findings import Finding, LintConfigError

BASELINE_VERSION = 2


def load_baseline(path: Union[str, Path]) -> Counter:
    """Finding-key multiset from a baseline file.

    Raises :class:`LintConfigError` (CLI exit 2) on unreadable or
    structurally malformed files — a silently ignored baseline would
    turn the gate off.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintConfigError(f"cannot read baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise LintConfigError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or "findings" not in doc:
        raise LintConfigError(
            f"baseline {path} is malformed: expected an object with a "
            f"'findings' list"
        )
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise LintConfigError(
            f"baseline {path} has version {version!r}, expected "
            f"{BASELINE_VERSION}"
        )
    keys: Counter = Counter()
    for i, entry in enumerate(doc["findings"]):
        if not isinstance(entry, dict) or not all(
                isinstance(entry.get(k), str)
                for k in ("rule", "path", "message")):
            raise LintConfigError(
                f"baseline {path}: entry {i} must carry string "
                f"'rule', 'path' and 'message' fields"
            )
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise LintConfigError(
                f"baseline {path}: entry {i} has invalid count "
                f"{count!r}"
            )
        keys[(entry["rule"], entry["path"], entry["message"])] += count
    return keys


def save_baseline(path: Union[str, Path],
                  findings: Iterable[Finding]) -> int:
    """Write the unsuppressed findings as the new baseline; returns
    the number of grandfathered keys."""
    keys = Counter(f.key for f in findings if not f.suppressed)
    entries = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(keys.items())
    ]
    doc = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def apply_baseline(findings: Iterable[Finding],
                   baseline: Counter) -> None:
    """Mark findings covered by the baseline multiset (in file order)."""
    remaining = Counter(baseline)
    for finding in findings:
        if finding.suppressed:
            continue
        if remaining[finding.key] > 0:
            remaining[finding.key] -= 1
            finding.baselined = True


__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]
