"""Legacy setup shim: this environment has setuptools but no wheel
package, so PEP 517 editable installs fail; ``--no-use-pep517`` needs a
setup.py.  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
