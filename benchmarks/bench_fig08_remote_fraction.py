"""Figure 8: fraction of memory accesses served by remote GPU memory,
baseline NUMA-GPU vs NUMA-GPU + CARVE.

Paper shape: NUMA-GPU averages ~40% remote accesses (XSBench and Lulesh
above 70%); CARVE cuts the average to ~8%, with RandAccess the stubborn
outlier (its working set thrashes any RDC).
"""

from repro.analysis.report import per_workload_table
from repro.sim import experiments as E

from _common import run_once, save_result, show


def test_fig08_remote_fraction(benchmark):
    data = run_once(benchmark, E.figure8)
    table = per_workload_table(
        data,
        title="Fig. 8 — fraction of remote memory accesses",
        geomean_row=False,
    )
    show("Figure 8", table)
    save_result("fig08_remote_fraction", table)

    numa = data[E.NUMA_GPU]
    carve = data[E.CARVE_HWC]
    avg_numa = sum(numa.values()) / len(numa)
    avg_carve = sum(carve.values()) / len(carve)

    # The headline reduction (paper: 40% -> 8%).
    assert avg_numa > 0.20
    assert avg_carve < 0.5 * avg_numa

    # The worst NUMA offenders are the shared-heavy workloads.
    assert numa["Lulesh"] > 0.5
    assert numa["XSBench"] > 0.4
    assert numa["RandAccess"] > 0.6

    # CARVE cannot rescue RandAccess (working set >> RDC).
    assert carve["RandAccess"] > 0.5

    # Every workload's remote fraction shrinks (or stays) under CARVE.
    for abbr in numa:
        assert carve[abbr] <= numa[abbr] + 0.02
