"""Extension (Section IV-A text): RDC hit predictor.

The paper notes RandAccess loses ~10% under CARVE because every RDC miss
serialises a local DRAM probe before the remote fetch, and that
"low-overhead cache hit-predictors [39] can mitigate these performance
outliers".  This bench shows the MAP-I-style predictor recovering most
of the loss while leaving well-behaved workloads untouched.
"""

from repro.analysis.report import format_table
from repro.config import COHERENCE_HARDWARE, baseline_config
from repro.sim.driver import run_workload, time_of

from _common import run_once, save_result, show

WORKLOADS = ["RandAccess", "Lulesh", "XSBench"]


def _compute():
    base = baseline_config()
    out = {}
    r_base = {
        w: time_of(run_workload(w, base, label="numa-gpu"), base)
        for w in WORKLOADS
    }
    for predictor in (False, True):
        cfg = base.with_rdc(
            coherence=COHERENCE_HARDWARE, hit_predictor=predictor
        )
        label = "carve-pred" if predictor else "carve-nopred"
        out[predictor] = {
            w: time_of(run_workload(w, cfg, label=label), cfg)
            for w in WORKLOADS
        }
    return r_base, out


def test_hit_predictor_recovers_outlier(benchmark):
    t_numa, t_carve = run_once(benchmark, _compute)
    rows = []
    for w in WORKLOADS:
        rows.append([
            w,
            f"{t_numa[w] / t_carve[False][w]:.3f}",
            f"{t_numa[w] / t_carve[True][w]:.3f}",
        ])
    table = format_table(
        ["workload", "CARVE vs NUMA-GPU", "CARVE+predictor vs NUMA-GPU"],
        rows,
        title="Section IV-A extension — RDC hit predictor",
    )
    show("Hit predictor extension", table)
    save_result("ext_hit_predictor", table)

    # Without the predictor, RandAccess regresses below the baseline.
    no_pred = t_numa["RandAccess"] / t_carve[False]["RandAccess"]
    with_pred = t_numa["RandAccess"] / t_carve[True]["RandAccess"]
    assert no_pred < 1.0
    # The predictor claws back a meaningful share of the loss.
    assert with_pred > no_pred + 0.03

    # Workloads with good RDC hit rates keep their CARVE win.
    for w in ("Lulesh", "XSBench"):
        gain_pred = t_numa[w] / t_carve[True][w]
        gain_nopred = t_numa[w] / t_carve[False][w]
        assert gain_pred > 0.9 * gain_nopred
        assert gain_pred > 1.3
