"""Ablation (Section IV-B text): write-through vs write-back RDC.

The paper evaluated both and found the write-through RDC within 1% of a
write-back RDC with a dirty-map, because line-granularity remote data is
heavily read-biased — so it chose write-through and a free dirty flush.
"""

from repro.analysis.report import format_table
from repro.config import COHERENCE_SOFTWARE, WRITE_BACK, WRITE_THROUGH, carve_config
from repro.perf.model import geometric_mean
from repro.sim.driver import run_workload, time_of

from _common import run_once, save_result, show

WORKLOADS = ["Lulesh", "HPGMG", "SSSP", "Euler", "MCB", "XSBench", "AMG"]


def _compute():
    out = {}
    for policy in (WRITE_THROUGH, WRITE_BACK):
        cfg = carve_config(coherence=COHERENCE_SOFTWARE, write_policy=policy)
        out[policy] = {
            w: time_of(run_workload(w, cfg, label=f"rdc-{policy}"), cfg)
            for w in WORKLOADS
        }
    return out


def test_write_through_vs_write_back(benchmark):
    times = run_once(benchmark, _compute)
    ratios = {
        w: times[WRITE_BACK][w] / times[WRITE_THROUGH][w] for w in WORKLOADS
    }
    table = format_table(
        ["workload", "write-back / write-through time"],
        [[w, f"{r:.3f}"] for w, r in ratios.items()],
        title="Ablation — RDC write policy (1.0 = identical)",
    )
    show("RDC write policy ablation", table)
    save_result("ablation_writeback", table)

    # Paper: within 1%.  Allow a slightly wider band for the scaled sim.
    gm = geometric_mean(list(ratios.values()))
    assert 0.95 < gm < 1.05
    for r in ratios.values():
        assert 0.9 < r < 1.1


def test_read_bias_justifies_write_through(benchmark):
    """The mechanism behind the result: remote data is read-biased."""

    def compute():
        cfg = carve_config(coherence=COHERENCE_SOFTWARE)
        stats = {}
        for w in WORKLOADS:
            t = run_workload(w, cfg, label="rdc-write_through").total()
            stats[w] = (t.remote_reads + t.rdc_hits, t.remote_writes)
        return stats

    stats = run_once(benchmark, compute)
    for w, (reads, writes) in stats.items():
        if reads + writes:
            assert reads / (reads + writes) > 0.5, w
    # Suite-wide, remote traffic is strongly read-biased.
    total_r = sum(r for r, _ in stats.values())
    total_w = sum(w for _, w in stats.values())
    assert total_r / (total_r + total_w) > 0.7
