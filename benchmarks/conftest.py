"""Benchmark-harness conftest: keeps ``_common`` importable."""
