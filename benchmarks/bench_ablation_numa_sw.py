"""Ablation: the NUMA-GPU software mechanisms themselves.

The baseline NUMA-GPU system (Section II-B) relies on (a) contiguous CTA
batching and (b) first-touch page placement to create locality, and the
paper's introduction reports that adding page migration on top still
leaves a ~49% gap.  This bench isolates each mechanism:

* contiguous vs round-robin CTA scheduling,
* first-touch vs static-interleaved page placement,
* baseline vs +page migration.
"""

from repro.analysis.report import format_table
from repro.config import (
    PLACEMENT_INTERLEAVED,
    SCHEDULE_ROUND_ROBIN,
    baseline_config,
)
from repro.perf.model import geometric_mean
from repro.sim.driver import run_workload, time_of

from _common import run_once, save_result, show

WORKLOADS = ["CoMD", "AMG", "Lulesh", "MiniAMR", "stream-triad"]


def _run(cfg, label):
    return {
        w: time_of(run_workload(w, cfg, label=label), cfg) for w in WORKLOADS
    }


def _compute():
    base = baseline_config()
    variants = {
        "numa-gpu": base,
        "round-robin CTAs": base.replace(scheduling=SCHEDULE_ROUND_ROBIN),
        "interleaved pages": base.replace(placement=PLACEMENT_INTERLEAVED),
        "+page migration": base.replace(migration=True),
    }
    return {name: _run(cfg, f"ablation-{name}") for name, cfg in variants.items()}


def test_numa_software_mechanisms(benchmark):
    times = run_once(benchmark, _compute)
    base = times["numa-gpu"]
    rows = []
    for name, t in times.items():
        rel = geometric_mean([base[w] / t[w] for w in WORKLOADS])
        rows.append([name, f"{rel:.2f}x"])
    table = format_table(
        ["configuration", "geomean perf vs NUMA-GPU"],
        rows,
        title="Ablation — NUMA-GPU software mechanisms",
    )
    show("NUMA software ablation", table)
    save_result("ablation_numa_sw", table)

    def rel(name):
        return geometric_mean([base[w] / times[name][w] for w in WORKLOADS])

    # Locality-oblivious CTA scheduling hurts: first-touch still follows
    # each CTA's private data, but every CTA boundary page is now falsely
    # shared across GPUs instead of only batch-edge pages.  (The paper's
    # inter-CTA locality effect is stronger; our generator gives CTAs
    # disjoint private slices, so only the boundary effect remains.)
    assert rel("round-robin CTAs") < 0.98
    # Static interleaving sends 3/4 of private accesses remote.
    assert rel("interleaved pages") < 0.75
    # Migration cannot beat first-touch placement by much on these
    # workloads (the paper's ~49%-gap observation): within a narrow band.
    assert 0.85 < rel("+page migration") < 1.15

    # Private streaming workloads suffer the most from bad placement.
    assert base["stream-triad"] / times["interleaved pages"]["stream-triad"] < 0.6
