"""Table IV: kernel-launch delay under software coherence.

Paper numbers: invalidating/flushing an 8 MB on-chip LLC costs
microseconds (tolerable within kernel-launch latency); naively
invalidating a 2 GB RDC costs ~2 ms and flushing its dirty data over a
64 GB/s link ~32 ms — reduced to exactly zero by epoch-counter
invalidation and a write-through RDC.
"""

from repro.analysis.flush_cost import (
    llc_flush_cost,
    rdc_flush_cost_carve,
    rdc_flush_cost_naive,
    table4_rows,
)
from repro.analysis.report import format_table
from repro.config import carve_config

from _common import run_once, save_result, show


def test_table4_flush_costs(benchmark):
    cfg = carve_config()
    rows = run_once(benchmark, lambda: table4_rows(cfg))
    table = format_table(
        ["cache", "invalidate", "flush dirty"],
        [list(r) for r in rows],
        title="Table IV — kernel-launch delay under software coherence",
    )
    show("Table IV", table)
    save_result("table4_flush_cost", table)

    llc = llc_flush_cost(cfg)
    naive = rdc_flush_cost_naive(cfg)
    carve = rdc_flush_cost_carve(cfg)

    # LLC costs are microseconds (paper: 4 us invalidate, 8 us flush).
    assert 1e-6 < llc.invalidate_s < 1e-5
    assert 1e-6 < llc.flush_dirty_s < 1e-4

    # Naive RDC costs are milliseconds (paper: 2 ms and 32 ms).
    assert 1e-3 < naive.invalidate_s < 1e-2
    assert 1e-2 < naive.flush_dirty_s < 1e-1
    assert naive.flush_dirty_s / naive.invalidate_s > 10

    # Epoch counters + write-through eliminate both entirely.
    assert carve.total_s == 0.0
