"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and archives the text under ``results/`` so EXPERIMENTS.md can be
checked against the latest run.  Benchmarks execute the underlying
simulation exactly once (``benchmark.pedantic`` with one round): the
interesting measurement is the figure's content, the wall-clock is
reported by pytest-benchmark for free.

Simulation results are memoised on disk (see :mod:`repro.sim.cache`), so
the full harness is expensive only on its first run.

Benchmarks that persist a machine-readable payload (``BENCH_*.json`` at
the repository root) write it through :func:`save_bench_json`, which
stamps the payload with a ``provenance`` block (schema version,
generation timestamp, git sha, simulator CODE_VERSION) and carries a
bounded ``history`` of previous stamped runs forward, so
``python -m repro report`` can render the headline numbers as a trend
across PRs (see ``docs/regression.md``).
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Optional, Union

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Version of the stamped BENCH_*.json envelope (payload + provenance +
#: history).  Bump when the envelope shape changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Upper bound on carried-forward history entries per payload.
BENCH_HISTORY_LIMIT = 50


def save_result(name: str, text: str) -> Path:
    """Archive a rendered figure/table under results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def bench_provenance(trend_keys: Iterable[str] = ()) -> dict:
    """The ``provenance`` stamp for a BENCH_*.json payload.

    *trend_keys* names the top-level payload scalars (e.g.
    ``speedup_geomean``) worth tracking run-over-run; the report's trend
    table uses them as columns.
    """
    from repro.obs.baseline import environment_fingerprint

    fp = environment_fingerprint()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": fp.get("git_sha"),
        "code_version": fp.get("code_version"),
        "python": fp.get("python"),
        "trend_keys": list(trend_keys),
    }


def _history_entry(prev: dict) -> Optional[dict]:
    """Condense a previously stamped payload into one trend row."""
    stamp = prev.get("provenance")
    if not isinstance(stamp, dict):
        return None  # pre-stamping payload: no trustworthy attribution
    entry = {
        "generated_at": stamp.get("generated_at"),
        "git_sha": stamp.get("git_sha"),
        "code_version": stamp.get("code_version"),
    }
    for key in stamp.get("trend_keys") or ():
        if key in prev:
            entry[key] = prev[key]
    return entry


def save_bench_json(
    path: Union[str, Path],
    payload: dict,
    trend_keys: Iterable[str] = (),
) -> Path:
    """Stamp *payload* and write it to *path*, appending trend history.

    If *path* already holds a stamped payload, its headline numbers are
    condensed into one ``history`` entry and carried forward (bounded at
    :data:`BENCH_HISTORY_LIMIT`), so the file accumulates a run-over-run
    trend instead of overwriting it.
    """
    path = Path(path)
    history: list = []
    if path.exists():
        try:
            prev = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            prev = None
        if isinstance(prev, dict):
            history = [e for e in prev.get("history") or ()
                       if isinstance(e, dict)]
            entry = _history_entry(prev)
            if entry is not None:
                history.append(entry)
    out = dict(payload)
    out["provenance"] = bench_provenance(trend_keys)
    out["history"] = history[-BENCH_HISTORY_LIMIT:]
    path.write_text(json.dumps(out, indent=2) + "\n")
    return path


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def show(title: str, text: str) -> None:
    print()
    print(f"==== {title} ====")
    print(text)
