"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and archives the text under ``results/`` so EXPERIMENTS.md can be
checked against the latest run.  Benchmarks execute the underlying
simulation exactly once (``benchmark.pedantic`` with one round): the
interesting measurement is the figure's content, the wall-clock is
reported by pytest-benchmark for free.

Simulation results are memoised on disk (see :mod:`repro.sim.cache`), so
the full harness is expensive only on its first run.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> Path:
    """Archive a rendered figure/table under results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def show(title: str, text: str) -> None:
    print()
    print(f"==== {title} ====")
    print(text)
