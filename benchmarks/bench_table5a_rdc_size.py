"""Table V(a): NUMA speedup sensitivity to the Remote Data Cache size.

Paper numbers (geomean speedup over 1 GPU): NUMA-GPU 2.53x; CARVE at
0.5/1/2/4 GB per GPU: 3.50/3.55/3.61/3.65x — i.e. even a 1.5% carve-out
captures most of the benefit, with workloads whose shared working set is
multi-GB (XSBench, HPGMG-amry) still gaining at larger sizes.
"""

from repro.analysis.report import format_table
from repro.sim import experiments as E

from _common import run_once, save_result, show

SIZES = [0.5, 1.0, 2.0, 4.0]
MEMORY_PER_GPU_GB = 32.0


def test_table5a_rdc_size(benchmark):
    data = run_once(benchmark, lambda: E.table5a(rdc_sizes_gb=SIZES))
    rows = []
    for name, speedup in data.items():
        if name == "NUMA-GPU":
            carve_frac = 0.0
        else:
            carve_frac = float(name.split("-")[1][:-2]) / MEMORY_PER_GPU_GB
        rows.append([name, f"{carve_frac * 100:.2f}%", f"{speedup:.2f}x"])
    table = format_table(
        ["configuration", "memory carve-out", "NUMA speedup (vs 1 GPU)"],
        rows,
        title="Table V(a) — speedup vs RDC size",
    )
    show("Table V(a)", table)
    save_result("table5a_rdc_size", table)

    speedups = [data[f"CARVE-{s:g}GB"] for s in SIZES]

    # Monotone improvement with RDC size.
    assert all(a <= b + 0.02 for a, b in zip(speedups, speedups[1:]))

    # Even the smallest carve-out beats the baseline massively.
    assert speedups[0] > data["NUMA-GPU"] + 0.5

    # Diminishing returns: the 0.5 -> 4 GB delta is small (paper: 0.15x).
    assert speedups[-1] - speedups[0] < 0.5
