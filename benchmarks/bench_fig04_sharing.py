"""Figure 4: distribution of memory accesses to private, read-only
shared, and read-write shared data at page (2 MB) and line (128 B)
granularity.

Paper shape: ~40% of accesses (up to 100%) land on read-write shared
*pages*, but at cache-line granularity most of that is false sharing —
the line-level read-write share is small.  This is the observation that
justifies a fine-grain RDC with cheap coherence.
"""

from repro.analysis.report import format_table
from repro.analysis.sharing import profile_sharing
from repro.sim.experiments import config_for, NUMA_GPU
from repro.workloads import suite
from repro.workloads.base import generate_trace

from _common import run_once, save_result, show


def _compute():
    cfg = config_for(NUMA_GPU)
    rows = []
    for spec in suite.SUITE:
        profile = profile_sharing(generate_trace(spec, cfg), cfg)
        page = profile.access_distribution("page")
        line = profile.access_distribution("line")
        rows.append((spec.abbr, page, line))
    return rows


def test_fig04_sharing_distribution(benchmark):
    rows = run_once(benchmark, _compute)
    table = format_table(
        ["workload", "pg-priv", "pg-ro", "pg-rw", "ln-priv", "ln-ro", "ln-rw"],
        [
            [
                abbr,
                f"{p.private:.2f}", f"{p.ro_shared:.2f}", f"{p.rw_shared:.2f}",
                f"{ln.private:.2f}", f"{ln.ro_shared:.2f}", f"{ln.rw_shared:.2f}",
            ]
            for abbr, p, ln in rows
        ],
        title="Fig. 4 — access distribution by sharing class",
    )
    show("Figure 4", table)
    save_result("fig04_sharing", table)

    page_rw = [p.rw_shared for _, p, _ in rows]
    line_rw = [ln.rw_shared for _, _, ln in rows]
    avg_page_rw = sum(page_rw) / len(page_rw)
    avg_line_rw = sum(line_rw) / len(line_rw)

    # A large share of accesses hit RW pages (paper: ~40% on average)...
    assert 0.15 < avg_page_rw < 0.65
    # ...but line-granularity RW sharing is far smaller (false sharing).
    assert avg_line_rw < 0.5 * avg_page_rw

    # RandAccess is truly read-write shared even at line granularity.
    rand_line = dict((a, ln) for a, _, ln in rows)["RandAccess"]
    assert rand_line.rw_shared > 0.5
