"""Figure 14: sensitivity to inter-GPU link bandwidth.

Paper shape: baseline NUMA-GPU performance tracks the link bandwidth
almost linearly; CARVE is nearly flat across 32-256 GB/s, hugging the
ideal system — and CARVE's *relative* advantage grows as links get
slower.  Counters are link-bandwidth independent, so this bench simulates
each system once and re-prices it per bandwidth point.
"""

from repro.analysis.report import series_table
from repro.sim import experiments as E

from _common import run_once, save_result, show

BWS = [16.0, 32.0, 64.0, 128.0, 256.0]


def test_fig14_link_bandwidth(benchmark):
    data = run_once(benchmark, lambda: E.figure14(link_bandwidths_gbs=BWS))
    table = series_table(
        data,
        "link GB/s",
        title="Fig. 14 — geomean speedup over 1 GPU vs link bandwidth",
    )
    show("Figure 14", table)
    save_result("fig14_link_bw", table)

    numa = data[E.NUMA_GPU]
    carve = data[E.CARVE_HWC]
    ideal = data[E.IDEAL]

    # NUMA-GPU is strongly link-bound: monotone and steep.
    assert numa[256.0] > 1.6 * numa[32.0]
    assert all(numa[a] <= numa[b] + 1e-9 for a, b in zip(BWS, BWS[1:]))

    # CARVE is nearly flat and close to ideal everywhere.
    assert carve[256.0] < 1.2 * carve[16.0]
    for bw in BWS[1:]:
        assert carve[bw] > 0.8 * ideal[bw]

    # CARVE's relative advantage grows as the link slows (the paper's
    # 64 -> 32 GB/s observation).
    adv_32 = carve[32.0] / numa[32.0]
    adv_64 = carve[64.0] / numa[64.0]
    assert adv_32 > adv_64

    # Ideal is link-independent by construction.
    assert abs(ideal[16.0] - ideal[256.0]) / ideal[256.0] < 0.02
