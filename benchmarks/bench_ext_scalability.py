"""Extension (Section V-E): CARVE scalability with node count, and
broadcast vs directory coherence.

The paper argues CARVE scales to arbitrary node counts, but that a
directory-less (broadcast) protocol generates invalidation traffic that
grows with the node count, making directory coherence attractive for
large systems.  This bench measures both effects on 2/4/8-GPU systems.
"""

from repro.analysis.report import format_table
from repro.config import (
    COHERENCE_DIRECTORY,
    COHERENCE_HARDWARE,
    INVALIDATE_MSG_BYTES,
    baseline_config,
)
from repro.sim.driver import run_workload, time_of

from _common import run_once, save_result, show

WORKLOAD = "SSSP"  # read-write shared: exercises invalidations
NODE_COUNTS = [2, 4, 8]


def _invalidate_bytes(result):
    total = result.total()
    return total.invalidates_sent * INVALIDATE_MSG_BYTES


def _compute():
    rows = []
    for n in NODE_COUNTS:
        base = baseline_config(n_gpus=n)
        single = base.single_gpu()
        r_single = run_workload(WORKLOAD, single, label=f"single-{n}")
        t_single = time_of(r_single, single)
        row = {"n": n}
        for coherence in (COHERENCE_HARDWARE, COHERENCE_DIRECTORY):
            cfg = base.with_rdc(coherence=coherence)
            r = run_workload(WORKLOAD, cfg, label=f"carve-{coherence}-{n}gpu")
            row[coherence] = {
                "speedup": t_single / time_of(r, cfg),
                "inval_bytes": _invalidate_bytes(r),
                "accesses": r.total().accesses,
            }
        rows.append(row)
    return rows


def test_scalability_and_directory_coherence(benchmark):
    rows = run_once(benchmark, _compute)
    table = format_table(
        ["GPUs", "HWC speedup", "DIR speedup",
         "HWC inval B/kacc", "DIR inval B/kacc"],
        [
            [
                str(r["n"]),
                f"{r[COHERENCE_HARDWARE]['speedup']:.2f}x",
                f"{r[COHERENCE_DIRECTORY]['speedup']:.2f}x",
                f"{1e3 * r[COHERENCE_HARDWARE]['inval_bytes'] / r[COHERENCE_HARDWARE]['accesses']:.1f}",
                f"{1e3 * r[COHERENCE_DIRECTORY]['inval_bytes'] / r[COHERENCE_DIRECTORY]['accesses']:.1f}",
            ]
            for r in rows
        ],
        title="Section V-E extension — node-count scaling of CARVE",
    )
    show("Scalability extension", table)
    save_result("ext_scalability", table)

    # CARVE keeps scaling: more GPUs, more speedup.
    hwc_speedups = [r[COHERENCE_HARDWARE]["speedup"] for r in rows]
    assert hwc_speedups == sorted(hwc_speedups)
    assert hwc_speedups[-1] > 4.0  # 8 GPUs well past 4x

    # Broadcast invalidation traffic grows with node count...
    def per_kacc(r, coh):
        return r[coh]["inval_bytes"] / r[coh]["accesses"]

    hwc_traffic = [per_kacc(r, COHERENCE_HARDWARE) for r in rows]
    assert hwc_traffic[-1] > 1.5 * hwc_traffic[0]

    # ...while the directory sends no more than the broadcast protocol,
    # with the gap widening at higher node counts.
    for r in rows:
        assert per_kacc(r, COHERENCE_DIRECTORY) <= per_kacc(
            r, COHERENCE_HARDWARE
        ) + 1e-12
    gap_small = per_kacc(rows[0], COHERENCE_HARDWARE) - per_kacc(
        rows[0], COHERENCE_DIRECTORY
    )
    gap_large = per_kacc(rows[-1], COHERENCE_HARDWARE) - per_kacc(
        rows[-1], COHERENCE_DIRECTORY
    )
    assert gap_large > gap_small
