"""Journal durability benchmark: what crash consistency costs.

Measures the crash-consistent journal (``src/repro/sim/journal.py``,
schema v2) on four axes and records them to ``BENCH_journal.json`` at
the repository root (provenance-stamped with trend history — see
``_common.save_bench_json`` and ``docs/regression.md``):

* **append throughput** — checksummed flushed records/s, default
  (flush-only) vs. opt-in fsync, so the durability tax of
  ``--fsync-journal`` is a recorded number instead of folklore;
* **scan throughput** — records/s through the classifying parser that
  resume rides on (one pass per batch thanks to the scan cache);
* **sidecar throughput** — digest-enveloped store and verified load
  MB/s on a result-sized payload.

Correctness is asserted inline: every appended record must survive a
fresh scan intact, and the sidecar payload must round-trip
byte-identically through its digest envelope.

Usage::

    PYTHONPATH=src python benchmarks/bench_journal.py          # full
    PYTHONPATH=src python benchmarks/bench_journal.py --smoke  # CI

The smoke run shrinks the workload and records nothing — shared-runner
wall clocks are too noisy to gate on; it exists to prove the bench
itself stays runnable.
"""

from __future__ import annotations

import argparse
import pickle
import sys
import tempfile
import time
from pathlib import Path

from repro.sim.journal import Journal

from _common import save_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_journal.json"

MB = 2**20


def _bench_appends(root: Path, records: int, fsync: bool) -> float:
    journal = Journal(root / f"append-{fsync}.jsonl", fsync=fsync)
    started = time.perf_counter()
    for i in range(records):
        journal.append(
            "done", f"bench/key{i}", attempt=1, elapsed_s=0.01,
            config_hash="0123456789abcdef",
        )
    elapsed = time.perf_counter() - started
    scan = Journal(journal.path).scan()
    assert len(scan.records) == records, "append/scan record mismatch"
    assert not (scan.torn_tail or scan.corrupt_records
                or scan.checksum_failures), "bench journal scans dirty"
    return records / elapsed


def _bench_scan(root: Path, records: int) -> float:
    journal = Journal(root / "scan.jsonl")
    for i in range(records):
        journal.append("done", f"bench/key{i}", attempt=1, elapsed_s=0.01)
    started = time.perf_counter()
    reader = Journal(journal.path)
    scan = reader.scan()
    elapsed = time.perf_counter() - started
    assert len(scan.records) == records
    # The cached accessors must not re-parse (they ride the same scan).
    assert len(reader.completed_keys()) == records
    return records / elapsed


def _bench_sidecar(root: Path, payload_mb: float, stores: int) -> dict:
    journal = Journal(root / "sidecar.jsonl")
    payload = {"blob": b"\xab" * int(payload_mb * MB)}
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    started = time.perf_counter()
    for i in range(stores):
        journal.store_result(f"bench/key{i % 4}", payload)
    store_s = time.perf_counter() - started
    started = time.perf_counter()
    for i in range(stores):
        loaded = journal.load_result_bytes(f"bench/key{i % 4}")
        assert loaded == raw, "sidecar payload did not round-trip"
    load_s = time.perf_counter() - started
    total_mb = stores * len(raw) / MB
    return {
        "store_mb_s": round(total_mb / store_s, 2),
        "load_mb_s": round(total_mb / load_s, 2),
    }


def run_bench(records: int, payload_mb: float, stores: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        root = Path(tmp)
        append_rps = _bench_appends(root, records, fsync=False)
        fsync_rps = _bench_appends(root, max(records // 10, 50), fsync=True)
        scan_rps = _bench_scan(root, records)
        sidecar = _bench_sidecar(root, payload_mb, stores)
    return {
        "bench": "journal",
        "records": records,
        "payload_mb": payload_mb,
        "append_records_s": round(append_rps, 1),
        "append_fsync_records_s": round(fsync_rps, 1),
        "fsync_slowdown": round(append_rps / max(fsync_rps, 1e-9), 2),
        "scan_records_s": round(scan_rps, 1),
        **sidecar,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke", action="store_true",
        help="tiny run, correctness asserts only, nothing recorded",
    )
    ap.add_argument(
        "--records", type=int, default=None, metavar="N",
        help="journal records per phase (default: 5000 full / 200 smoke)",
    )
    ap.add_argument(
        "--output", type=Path, default=OUTPUT, help="result JSON path"
    )
    args = ap.parse_args(argv)

    if args.smoke:
        run_bench(records=args.records or 200, payload_mb=0.5, stores=8)
        print("journal bench ok (smoke: not recorded)")
        return 0

    payload = run_bench(
        records=args.records or 5000, payload_mb=4.0, stores=24
    )
    save_bench_json(
        args.output, payload,
        trend_keys=("append_records_s", "scan_records_s", "store_mb_s"),
    )
    print(f"-> {args.output}")
    for key in ("append_records_s", "append_fsync_records_s",
                "fsync_slowdown", "scan_records_s", "store_mb_s",
                "load_mb_s"):
        print(f"  {key}: {payload[key]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
