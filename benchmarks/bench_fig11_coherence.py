"""Figure 11: CARVE under software vs hardware coherence.

Paper shape: extending GPU software coherence to the RDC (flush at every
kernel boundary, made instant by epoch counters) forfeits the RDC's
inter-kernel locality for almost every workload — XSBench, whose reuse is
intra-kernel, is the exception.  GPU-VI + IMST hardware coherence
restores the benefit to within a whisker of zero-cost coherence.
"""

from repro.analysis.report import per_workload_table
from repro.perf.model import geometric_mean
from repro.sim import experiments as E

from _common import run_once, save_result, show


def test_fig11_coherence(benchmark):
    data = run_once(benchmark, E.figure11)
    table = per_workload_table(
        data, title="Fig. 11 — RDC coherence mechanisms relative to ideal"
    )
    show("Figure 11", table)
    save_result("fig11_coherence", table)

    numa = data[E.NUMA_GPU]
    swc = data[E.CARVE_SWC]
    hwc = data[E.CARVE_HWC]
    noc = data[E.CARVE_NOC]

    gm = {k: geometric_mean(list(v.values())) for k, v in data.items()}

    # Ordering: hardware coherence ~ no-coherence >> software coherence.
    assert gm[E.CARVE_HWC] > 0.95 * gm[E.CARVE_NOC]
    assert gm[E.CARVE_SWC] < 0.9 * gm[E.CARVE_NOC]

    # The workloads the paper names as restored by hardware coherence.
    for abbr in ("Lulesh", "Euler", "HPGMG"):
        assert hwc[abbr] > swc[abbr] + 0.15
        assert hwc[abbr] > 0.85

    # XSBench retains most CARVE benefit even under software coherence
    # (its reuse is intra-kernel).
    assert swc["XSBench"] > 0.8 * noc["XSBench"]
    assert swc["XSBench"] > numa["XSBench"] + 0.2
