"""Figure 13: multi-GPU speedup over a single GPU for the headline
systems.

Paper numbers (geomean over 20 workloads): NUMA-GPU 2.53x, +read-only
replication 2.75x, CARVE 3.61x, ideal 3.7x.
"""

from repro.analysis.report import per_workload_table
from repro.perf.model import geometric_mean
from repro.sim import experiments as E

from _common import run_once, save_result, show


def test_fig13_speedup(benchmark):
    data = run_once(benchmark, E.figure13)
    table = per_workload_table(
        data, title="Fig. 13 — speedup over a single GPU"
    )
    show("Figure 13", table)
    save_result("fig13_speedup", table)

    gm = {k: geometric_mean(list(v.values())) for k, v in data.items()}

    # The paper's ordering, with loose bands around its numbers.
    assert gm[E.NUMA_GPU] < gm[E.NUMA_REPL_RO] < gm[E.CARVE_HWC] < gm[E.IDEAL]
    assert 2.2 < gm[E.NUMA_GPU] < 2.9       # paper: 2.53x
    assert 2.5 < gm[E.NUMA_REPL_RO] < 3.2   # paper: 2.75x
    assert 3.2 < gm[E.CARVE_HWC] < 3.9      # paper: 3.61x
    assert 3.6 < gm[E.IDEAL] <= 4.0         # paper: 3.7x

    # CARVE is never (meaningfully) worse than read-only replication.
    for abbr, v in data[E.CARVE_HWC].items():
        assert v > 0.85 * data[E.NUMA_REPL_RO][abbr]

    # RandAccess is CARVE's one loss against the baseline.
    assert data[E.CARVE_HWC]["RandAccess"] < data[E.NUMA_GPU]["RandAccess"]
