"""Scale-out benchmark: persistent worker pool vs. serial sweep.

Runs the same re-simulation sweep twice through
:func:`repro.sim.sweep.run_sweep` — once serially (``jobs=1``, the
bit-identical in-process path) and once on the persistent worker pool
(``--jobs N``) — and records wall time, speedup, and parallel
efficiency to ``BENCH_scaleout.json`` at the repository root.  The
payload is stamped with a provenance block (git sha, CODE_VERSION,
timestamp) and carries a run-over-run trend history — see
``_common.save_bench_json`` and ``docs/regression.md``.

Correctness is gated harder than throughput: every point's
deterministic traffic digest (``summarize_result``) and modelled time
must be **bit-identical** between the serial and pooled runs, and the
``done`` records of both journals must carry identical digests.  A
divergence fails the bench regardless of speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaleout.py          # full
    PYTHONPATH=src python benchmarks/bench_scaleout.py --smoke  # CI gate
    PYTHONPATH=src python benchmarks/bench_scaleout.py --pin    # NUMA-pin

The full run gates parallel efficiency at ``--min-efficiency`` (default
0.7: a 100-point sweep at ``--jobs N`` must reach at least ``0.7 * N``
the serial throughput, with N capped at the machine's core count).  The
smoke run checks digest parity only — CI wall clocks are too noisy to
gate on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.config import baseline_config
from repro.obs.summary import summarize_result
from repro.sim.pool import numa_nodes
from repro.sim.runner import RunnerPolicy
from repro.sim.sweep import run_sweep

from _common import save_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_scaleout.json"

WORKLOADS = ("Lulesh", "Euler")

GB = 2**30


def _values(n: int) -> list[float]:
    """*n* distinct RDC sizes (bytes): distinct configs, comparable cost."""
    return [float(GB // 2 + i * (GB // 64)) for i in range(n)]


def _factory(v: float):
    return baseline_config().with_rdc(int(v))


def _run_pass(values, jobs: int, pin: bool, journal: Path):
    """One sweep pass under the given policy; returns (sweep, seconds)."""
    policy = RunnerPolicy(jobs=jobs, pin=pin, journal_path=journal)
    t0 = time.perf_counter()
    sweep = run_sweep(
        "scaleout", values, _factory, WORKLOADS,
        use_cache=False, runner=policy,
    )
    elapsed = time.perf_counter() - t0
    if not sweep.ok:
        raise AssertionError(
            f"scale-out sweep (jobs={jobs}) had failed points:\n"
            f"{sweep.failure_summary()}"
        )
    return sweep, elapsed


def _digests(sweep) -> dict:
    """Deterministic digest + modelled time per point, for parity checks."""
    out = {}
    for cell, point in sweep.points.items():
        value, workload = cell
        out[f"{value:g}/{workload}"] = {
            "metrics": summarize_result(point.result),
            "time_s": point.time_s,
        }
    return out


def _journal_digests(journal: Path) -> dict:
    """key -> metrics digest of every ``done`` record in a journal."""
    out = {}
    with journal.open(encoding="utf-8") as fh:
        for line in fh:
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if rec.get("event") == "done":
                out[rec["key"]] = rec.get("metrics")
    return out


def _check_identical(serial, pooled, j_serial: Path, j_pooled: Path) -> None:
    d_serial, d_pooled = _digests(serial), _digests(pooled)
    if d_serial != d_pooled:
        diverged = sorted(
            k for k in d_serial
            if d_serial[k] != d_pooled.get(k)
        )
        raise AssertionError(
            f"pooled sweep results diverge from serial on "
            f"{len(diverged)} point(s): {diverged[:5]}"
        )
    js, jp = _journal_digests(j_serial), _journal_digests(j_pooled)
    if js != jp:
        raise AssertionError(
            "journal 'done' digests diverge between serial and pooled runs"
        )


def run_bench(points: int, jobs: int, pin: bool) -> dict:
    if points % len(WORKLOADS):
        raise ValueError(f"points must be a multiple of {len(WORKLOADS)}")
    values = _values(points // len(WORKLOADS))
    cpus = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="repro-scaleout-") as tmp:
        tmp_dir = Path(tmp)
        serial, t_serial = _run_pass(
            values, 1, False, tmp_dir / "serial.jsonl"
        )
        pooled, t_pool = _run_pass(
            values, jobs, pin, tmp_dir / "pooled.jsonl"
        )
        _check_identical(
            serial, pooled,
            tmp_dir / "serial.jsonl", tmp_dir / "pooled.jsonl",
        )
    speedup = t_serial / t_pool
    # Speedup can only reach the cores actually present; efficiency is
    # judged against min(jobs, cpus) so oversubscribed runs (CI boxes,
    # laptops) are not graded against parallelism the hardware lacks.
    efficiency = speedup / min(jobs, cpus)
    payload = {
        "bench": "scaleout",
        "unit": "points_per_second",
        "points": points,
        "jobs": jobs,
        "cpus": cpus,
        "numa_nodes": len(numa_nodes()),
        "pin": pin,
        "workloads": list(WORKLOADS),
        "serial_s": round(t_serial, 3),
        "pool_s": round(t_pool, 3),
        "serial_points_per_s": round(points / t_serial, 3),
        "pool_points_per_s": round(points / t_pool, 3),
        "speedup": round(speedup, 3),
        "efficiency": round(efficiency, 3),
        "identical": True,
    }
    print(
        f"{points} points: serial {t_serial:.2f}s "
        f"({payload['serial_points_per_s']:.2f} pt/s), "
        f"jobs={jobs}{' pinned' if pin else ''} {t_pool:.2f}s "
        f"({payload['pool_points_per_s']:.2f} pt/s) -> "
        f"x{speedup:.2f} speedup, {efficiency:.0%} efficiency "
        f"on {cpus} core(s) / {payload['numa_nodes']} NUMA node(s); "
        f"results bit-identical"
    )
    return payload


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep at --jobs 2: a fast CI pool-parity gate "
        "(digest identity only, no efficiency gate, does not write "
        "the JSON)",
    )
    ap.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="pool size (default: the machine's core count, minimum 2 "
        "so the pool path is always exercised)",
    )
    ap.add_argument(
        "--points", type=int, default=None, metavar="P",
        help="sweep points (default: 100 full / 12 smoke)",
    )
    ap.add_argument(
        "--pin", action="store_true",
        help="pin pool workers across NUMA nodes (see docs/runner.md)",
    )
    ap.add_argument(
        "--min-efficiency", type=float, default=0.7, metavar="FRACTION",
        help="full-run gate: speedup / min(jobs, cpus) floor "
        "(default 0.7)",
    )
    ap.add_argument(
        "--output", type=Path, default=OUTPUT, help="result JSON path"
    )
    args = ap.parse_args(argv)

    if args.smoke:
        run_bench(
            points=args.points or 12, jobs=args.jobs or 2, pin=args.pin
        )
        print("pool parity ok (smoke: not recorded)")
        return 0

    jobs = args.jobs or max(2, os.cpu_count() or 1)
    payload = run_bench(points=args.points or 100, jobs=jobs, pin=args.pin)
    save_bench_json(
        args.output, payload, trend_keys=("speedup", "efficiency")
    )
    print(f"-> {args.output}")
    if payload["efficiency"] < args.min_efficiency:
        print(
            f"FAIL: efficiency {payload['efficiency']:.0%} below the "
            f"{args.min_efficiency:.0%} floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
