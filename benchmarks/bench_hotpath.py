"""Hot-path microbenchmark: vectorized vs. reference execution engine.

Times both :class:`MultiGpuSystem` engines over suite workloads under the
paper's main configurations and records accesses/second (plus the
speedup of the vectorized engine over the reference per-access loop) to
``BENCH_hotpath.json`` at the repository root, so the perf trajectory of
the hot path is tracked from PR to PR.

Each (workload, config) cell is timed best-of-N (wall-clock noise between
otherwise identical runs is easily 20-30% on shared machines; the minimum
is the standard robust estimator for throughput benchmarks).  Both
engines run the *same* generated trace, and their ``RunResult`` counters
are asserted equal as a side-effect sanity check.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py           # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_SOFTWARE,
    WRITE_BACK,
    SystemConfig,
    baseline_config,
)
from repro.numa.system import ENGINE_REFERENCE, ENGINE_VECTORIZED, MultiGpuSystem
from repro.workloads.base import generate_trace
from repro.workloads.suite import get

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_hotpath.json"

WORKLOADS = ("Lulesh", "Euler", "SSSP")


def _configs() -> dict[str, SystemConfig]:
    base = baseline_config()
    return {
        "baseline": base,
        "carve-swc-wb": base.with_rdc(
            coherence=COHERENCE_SOFTWARE, write_policy=WRITE_BACK
        ),
        "carve-hwc": base.with_rdc(coherence=COHERENCE_HARDWARE),
    }


def _scaled_spec(abbr: str, max_accesses: int, n_kernels: int):
    return dataclasses.replace(
        get(abbr),
        n_kernels=n_kernels,
        warmup_kernels=1,
        max_accesses=max_accesses,
        min_accesses=max(1, max_accesses // 4),
    )


def _time_engine(cfg: SystemConfig, trace, engine: str, repeats: int):
    """Best-of-*repeats* wall time; returns (seconds, RunResult)."""
    best = math.inf
    result = None
    for _ in range(repeats):
        system = MultiGpuSystem(cfg, engine=engine)
        t0 = time.perf_counter()
        r = system.run(trace)
        best = min(best, time.perf_counter() - t0)
        if result is None:
            result = r
    return best, result


def run_bench(max_accesses: int, n_kernels: int, repeats: int) -> dict:
    cells = []
    for workload in WORKLOADS:
        spec = _scaled_spec(workload, max_accesses, n_kernels)
        for label, cfg in _configs().items():
            trace = generate_trace(spec, cfg)
            n_acc = int(sum(len(k.lines) for k in trace.kernels))
            t_vec, r_vec = _time_engine(cfg, trace, ENGINE_VECTORIZED, repeats)
            t_ref, r_ref = _time_engine(cfg, trace, ENGINE_REFERENCE, repeats)
            if r_vec != r_ref:
                raise AssertionError(
                    f"engine divergence on {workload}/{label}: the "
                    "vectorized engine is not counter-identical"
                )
            cell = {
                "workload": workload,
                "config": label,
                "accesses": n_acc,
                "vectorized_acc_per_s": round(n_acc / t_vec, 1),
                "reference_acc_per_s": round(n_acc / t_ref, 1),
                "speedup": round(t_ref / t_vec, 3),
            }
            cells.append(cell)
            print(
                f"{workload:8s} {label:14s} "
                f"vec={cell['vectorized_acc_per_s']:>11,.0f}/s "
                f"ref={cell['reference_acc_per_s']:>11,.0f}/s "
                f"x{cell['speedup']:.2f}"
            )
    speedups = [c["speedup"] for c in cells]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "bench": "hotpath",
        "unit": "accesses_per_second",
        "repeats": repeats,
        "max_accesses_per_kernel": max_accesses,
        "n_kernels": n_kernels,
        "cells": cells,
        "speedup_min": round(min(speedups), 3),
        "speedup_geomean": round(geomean, 3),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small traces, fewer repeats: a fast CI engines-still-fast "
        "and engines-still-equal gate (does not write the JSON)",
    )
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument(
        "--output", type=Path, default=OUTPUT, help="result JSON path"
    )
    args = ap.parse_args(argv)

    if args.smoke:
        payload = run_bench(
            max_accesses=8000, n_kernels=2, repeats=args.repeats or 1
        )
        print(f"geomean x{payload['speedup_geomean']:.2f} (smoke: not recorded)")
        return 0

    payload = run_bench(
        max_accesses=80000, n_kernels=4, repeats=args.repeats or 5
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"geomean x{payload['speedup_geomean']:.2f}, "
        f"min x{payload['speedup_min']:.2f} -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
