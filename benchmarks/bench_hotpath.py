"""Hot-path microbenchmark: vectorized vs. reference execution engine.

Times both :class:`MultiGpuSystem` engines over suite workloads under the
paper's main configurations and records accesses/second (plus the
speedup of the vectorized engine over the reference per-access loop) to
``BENCH_hotpath.json`` at the repository root, so the perf trajectory of
the hot path is tracked from PR to PR.  The payload is stamped with a
provenance block (git sha, CODE_VERSION, timestamp) and carries a
run-over-run trend history — see ``_common.save_bench_json`` and
``docs/regression.md``.

Each (workload, config) cell is timed best-of-N (wall-clock noise between
otherwise identical runs is easily 20-30% on shared machines; the minimum
is the standard robust estimator for throughput benchmarks).  Both
engines run the *same* generated trace, and their ``RunResult`` counters
are asserted equal as a side-effect sanity check.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py             # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke     # CI gate
    PYTHONPATH=src python benchmarks/bench_hotpath.py --obs-check # obs gate

``--obs-check`` guards the observability layer's overhead contract
(docs/observability.md): a metrics-only ``Observability`` attached to
the vectorized engine must cost < 5% wall time and leave the
``RunResult`` bit-identical.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import sys
import time
from pathlib import Path

from repro.config import (
    COHERENCE_HARDWARE,
    COHERENCE_SOFTWARE,
    WRITE_BACK,
    SystemConfig,
    baseline_config,
)
from repro.numa.system import ENGINE_REFERENCE, ENGINE_VECTORIZED, MultiGpuSystem
from repro.workloads.base import generate_trace
from repro.workloads.suite import get

from _common import save_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_hotpath.json"

WORKLOADS = ("Lulesh", "Euler", "SSSP")


def _configs() -> dict[str, SystemConfig]:
    base = baseline_config()
    return {
        "baseline": base,
        "carve-swc-wb": base.with_rdc(
            coherence=COHERENCE_SOFTWARE, write_policy=WRITE_BACK
        ),
        "carve-hwc": base.with_rdc(coherence=COHERENCE_HARDWARE),
    }


def _scaled_spec(abbr: str, max_accesses: int, n_kernels: int):
    return dataclasses.replace(
        get(abbr),
        n_kernels=n_kernels,
        warmup_kernels=1,
        max_accesses=max_accesses,
        min_accesses=max(1, max_accesses // 4),
    )


def _time_engine(cfg: SystemConfig, trace, engine: str, repeats: int):
    """Best-of-*repeats* wall time; returns (seconds, RunResult)."""
    best = math.inf
    result = None
    for _ in range(repeats):
        system = MultiGpuSystem(cfg, engine=engine)
        t0 = time.perf_counter()
        r = system.run(trace)
        best = min(best, time.perf_counter() - t0)
        if result is None:
            result = r
    return best, result


def _time_engine_traced(cfg, trace, repeats: int, spill_dir: Path):
    """Best-of-*repeats* vectorized wall time with span tracing + spill
    attached; returns (seconds, RunResult)."""
    best = math.inf
    result = None
    for _ in range(repeats):
        obs, spill = _traced_obs(spill_dir)
        system = MultiGpuSystem(cfg, engine=ENGINE_VECTORIZED, obs=obs)
        t0 = time.perf_counter()
        r = system.run(trace)
        best = min(best, time.perf_counter() - t0)
        spill.close()
        if result is None:
            result = r
    return best, result


def run_bench(max_accesses: int, n_kernels: int, repeats: int) -> dict:
    import tempfile

    cells = []
    for workload in WORKLOADS:
        spec = _scaled_spec(workload, max_accesses, n_kernels)
        for label, cfg in _configs().items():
            trace = generate_trace(spec, cfg)
            n_acc = int(sum(len(k.lines) for k in trace.kernels))
            t_vec, r_vec = _time_engine(cfg, trace, ENGINE_VECTORIZED, repeats)
            t_ref, r_ref = _time_engine(cfg, trace, ENGINE_REFERENCE, repeats)
            if r_vec != r_ref:
                raise AssertionError(
                    f"engine divergence on {workload}/{label}: the "
                    "vectorized engine is not counter-identical"
                )
            with tempfile.TemporaryDirectory() as tmp:
                t_traced, r_traced = _time_engine_traced(
                    cfg, trace, repeats, Path(tmp)
                )
            if r_traced != r_vec:
                raise AssertionError(
                    f"tracing divergence on {workload}/{label}: span "
                    "tracing + spill must leave RunResult bit-identical"
                )
            cell = {
                "workload": workload,
                "config": label,
                "accesses": n_acc,
                "vectorized_acc_per_s": round(n_acc / t_vec, 1),
                "reference_acc_per_s": round(n_acc / t_ref, 1),
                "tracing_acc_per_s": round(n_acc / t_traced, 1),
                "tracing_overhead": round(t_traced / t_vec - 1.0, 4),
                "speedup": round(t_ref / t_vec, 3),
            }
            cells.append(cell)
            print(
                f"{workload:8s} {label:14s} "
                f"vec={cell['vectorized_acc_per_s']:>11,.0f}/s "
                f"ref={cell['reference_acc_per_s']:>11,.0f}/s "
                f"traced={cell['tracing_acc_per_s']:>11,.0f}/s "
                f"x{cell['speedup']:.2f}"
            )
    speedups = [c["speedup"] for c in cells]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "bench": "hotpath",
        "unit": "accesses_per_second",
        "repeats": repeats,
        "max_accesses_per_kernel": max_accesses,
        "n_kernels": n_kernels,
        "cells": cells,
        "speedup_min": round(min(speedups), 3),
        "speedup_geomean": round(geomean, 3),
    }


#: Overhead budget for a metrics-only Observability (docs/observability.md).
OBS_OVERHEAD_LIMIT = 0.05


def _traced_obs(spill_dir: Path):
    """An Observability with span tracing + crash-safe spill attached —
    the full distributed-tracing posture of docs/tracing.md."""
    from repro.obs import Observability, SpanSpill
    from repro.obs.trace import TraceContext

    ctx = TraceContext.mint(seed="bench-hotpath")
    spill = SpanSpill(spill_dir / "bench-spans.jsonl")
    return Observability(context=ctx, spill=spill), spill


def _measure_obs_cell(cfg, trace, repeats, spill_dir):
    """Interleaved best-of-*repeats* timings:
    ``(t_bare, t_obs, t_traced, r_bare, r_obs, r_traced)``.

    Bare, observed, and span-traced runs alternate within each repeat
    so a load spike on a shared machine hits all variants rather than
    biasing one.
    """
    from repro.obs import Observability

    t_bare = t_obs = t_traced = math.inf
    r_bare = r_obs = r_traced = None
    for _ in range(repeats):
        system = MultiGpuSystem(cfg, engine=ENGINE_VECTORIZED)
        t0 = time.perf_counter()
        r = system.run(trace)
        t_bare = min(t_bare, time.perf_counter() - t0)
        if r_bare is None:
            r_bare = r
        obs = Observability()  # metrics only, tracing off
        system = MultiGpuSystem(cfg, engine=ENGINE_VECTORIZED, obs=obs)
        t0 = time.perf_counter()
        r = system.run(trace)
        t_obs = min(t_obs, time.perf_counter() - t0)
        if r_obs is None:
            r_obs = r
        obs, spill = _traced_obs(spill_dir)  # spans + spill on
        system = MultiGpuSystem(cfg, engine=ENGINE_VECTORIZED, obs=obs)
        t0 = time.perf_counter()
        r = system.run(trace)
        t_traced = min(t_traced, time.perf_counter() - t0)
        spill.close()
        if r_traced is None:
            r_traced = r
    return t_bare, t_obs, t_traced, r_bare, r_obs, r_traced


def run_obs_check(max_accesses: int, n_kernels: int, repeats: int) -> int:
    """Assert the observability layer's overhead + fidelity contract.

    For each (workload, config) cell: run the vectorized engine bare,
    with a metrics-only :class:`repro.obs.Observability` attached, and
    with span tracing + crash-safe spill on top (the distributed-tracing
    posture of docs/tracing.md) — interleaved, best-of-*repeats* each.
    Require bit-identical ``RunResult`` and < 5% wall-time overhead on
    the best times for *both* observed variants.  A cell over budget is
    re-measured up to twice before it counts as a failure — single-shot
    wall clock on a shared machine is noisy, and only a *repeatable*
    overage means the contract is broken.
    """
    import tempfile

    worst = 0.0
    failures = 0
    for workload in WORKLOADS:
        spec = _scaled_spec(workload, max_accesses, n_kernels)
        for label, cfg in _configs().items():
            trace = generate_trace(spec, cfg)
            overhead = traced_overhead = math.inf
            with tempfile.TemporaryDirectory() as tmp:
                for attempt in range(3):
                    (t_bare, t_obs, t_traced,
                     r_bare, r_obs, r_traced) = _measure_obs_cell(
                        cfg, trace, repeats, Path(tmp)
                    )
                    overhead = min(overhead, t_obs / t_bare - 1.0)
                    traced_overhead = min(
                        traced_overhead, t_traced / t_bare - 1.0
                    )
                    if (overhead < OBS_OVERHEAD_LIMIT
                            and traced_overhead < OBS_OVERHEAD_LIMIT):
                        break
            if r_obs != r_bare:
                print(f"{workload}/{label}: RunResult DIVERGES under obs")
                failures += 1
                continue
            if r_traced != r_bare:
                print(f"{workload}/{label}: RunResult DIVERGES under "
                      f"span tracing + spill")
                failures += 1
                continue
            worst = max(worst, overhead, traced_overhead)
            verdict = "ok" if (overhead < OBS_OVERHEAD_LIMIT and
                               traced_overhead < OBS_OVERHEAD_LIMIT) \
                else "FAIL"
            if verdict == "FAIL":
                failures += 1
            print(
                f"{workload:8s} {label:14s} bare={t_bare:.4f}s "
                f"obs={t_obs:.4f}s ({overhead:+.1%}) "
                f"traced={t_traced:.4f}s ({traced_overhead:+.1%}) "
                f"{verdict}"
            )
    print(
        f"worst observed overhead {worst:+.1%} "
        f"(budget {OBS_OVERHEAD_LIMIT:.0%}, metrics-only and "
        f"span-traced+spill variants both gated)"
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small traces, fewer repeats: a fast CI engines-still-fast "
        "and engines-still-equal gate (does not write the JSON)",
    )
    ap.add_argument(
        "--obs-check",
        action="store_true",
        help="assert the observability layer costs < 5%% wall time and "
        "leaves RunResult bit-identical (does not write the JSON)",
    )
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument(
        "--output", type=Path, default=OUTPUT, help="result JSON path"
    )
    args = ap.parse_args(argv)

    if args.obs_check:
        return run_obs_check(
            max_accesses=80000, n_kernels=4, repeats=args.repeats or 5
        )

    if args.smoke:
        payload = run_bench(
            max_accesses=8000, n_kernels=2, repeats=args.repeats or 1
        )
        print(f"geomean x{payload['speedup_geomean']:.2f} (smoke: not recorded)")
        return 0

    payload = run_bench(
        max_accesses=80000, n_kernels=4, repeats=args.repeats or 5
    )
    save_bench_json(
        args.output, payload,
        trend_keys=("speedup_geomean", "speedup_min"),
    )
    print(
        f"geomean x{payload['speedup_geomean']:.2f}, "
        f"min x{payload['speedup_min']:.2f} -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
