"""Figure 2: performance of NUMA-GPU (and +read-only replication)
relative to an ideal paging mechanism that replicates ALL shared pages.

Paper shape: eight workloads show negligible NUMA bottlenecks, three are
cured by read-only page replication, and the rest lose 20-80% that only
read-write replication (or CARVE) recovers.
"""

from repro.analysis.report import per_workload_table
from repro.perf.model import geometric_mean
from repro.sim import experiments as E
from repro.workloads import suite

from _common import run_once, save_result, show


def test_fig02_numa_gap(benchmark):
    data = run_once(benchmark, E.figure2)
    table = per_workload_table(
        data, title="Fig. 2 — performance relative to ideal (replicate-all)"
    )
    show("Figure 2", table)
    save_result("fig02_numa_gap", table)

    numa = data[E.NUMA_GPU]
    repl = data[E.NUMA_REPL_RO]

    # Eight workloads have negligible NUMA bottlenecks.
    benign = [w for w, v in numa.items() if v > 0.9]
    assert len(benign) >= 6

    # The RO-fixable group reaches ~ideal only with replication.
    for w, group in suite.GROUPS.items():
        if group == suite.GROUP_RO_FIXED:
            assert repl[w] > 0.9
            assert numa[w] < 0.8

    # The RW-shared group keeps a 20-80% gap even with RO replication.
    rw_gaps = [
        repl[w]
        for w, g in suite.GROUPS.items()
        if g == suite.GROUP_RW_SHARED
    ]
    assert geometric_mean(rw_gaps) < 0.8

    # Aggregate gap matches the paper's ~47% slowdown headline loosely.
    assert geometric_mean(list(numa.values())) < 0.75
