"""Table V(b): slowdown when the carve-out forces application data to
spill into system memory (Unified-Memory model).

Paper numbers: spilling 1.5/3.12/6.25/12.5% of the footprint costs
0.96/0.94/0.83/0.76x — modest, because UM paging serves the *cold* end
of the footprint while CARVE serves the hot shared end.
"""

from repro.analysis.report import format_table
from repro.sim import experiments as E

from _common import run_once, save_result, show

FRACS = [0.0, 0.015, 0.0312, 0.0625, 0.125]


def test_table5b_capacity_loss(benchmark):
    data = run_once(benchmark, lambda: E.table5b(spill_fractions=FRACS))
    table = format_table(
        ["footprint spilled", "geomean slowdown"],
        [[f"{f * 100:.2f}%", f"{v:.2f}x"] for f, v in data.items()],
        title="Table V(b) — slowdown due to memory carve-out",
    )
    show("Table V(b)", table)
    save_result("table5b_capacity", table)

    # No spill, no slowdown.
    assert data[0.0] == 1.0

    # Monotone degradation with spill size.
    values = [data[f] for f in FRACS]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    # Small carve-outs are nearly free (paper: 1.5% -> 0.96x).
    assert data[0.015] > 0.93

    # Even 12.5% stays within the paper's band (0.76x) rather than
    # collapsing — the cold-page heat skew is what makes this possible.
    assert 0.6 < data[0.125] < 0.95
