"""Figure 9: CARVE with zero-overhead coherence (upper bound) against
NUMA-GPU, +read-only replication, and the ideal system.

Paper shape: CARVE-No-Coherence closes the gap to within ~5% of ideal on
average — far past what software replication achieves — while RandAccess
*degrades* ~10% because every RDC miss serialises a probe before the
remote fetch.
"""

from repro.analysis.report import per_workload_table
from repro.perf.model import geometric_mean
from repro.sim import experiments as E

from _common import run_once, save_result, show


def test_fig09_carve_upper_bound(benchmark):
    data = run_once(benchmark, E.figure9)
    table = per_workload_table(
        data, title="Fig. 9 — CARVE-No-Coherence relative to ideal"
    )
    show("Figure 9", table)
    save_result("fig09_carve_upper", table)

    numa = data[E.NUMA_GPU]
    repl = data[E.NUMA_REPL_RO]
    noc = data[E.CARVE_NOC]

    gm_numa = geometric_mean(list(numa.values()))
    gm_repl = geometric_mean(list(repl.values()))
    gm_noc = geometric_mean(list(noc.values()))

    # Paper: baseline/replication leave ~50% on the table; CARVE ~5-10%.
    assert gm_numa < 0.75
    assert gm_repl < 0.85
    assert gm_noc > 0.85
    assert gm_noc > gm_repl > gm_numa

    # Workloads the paper calls out as rescued by CARVE.
    for abbr in ("Lulesh", "Euler", "SSSP", "HPGMG"):
        assert noc[abbr] > 0.8
        assert noc[abbr] > numa[abbr] + 0.2

    # The RandAccess outlier: CARVE makes it slower than baseline.
    assert noc["RandAccess"] < numa["RandAccess"]
