"""Tables II and III: static characteristics of the workload suite and
the simulated system.  These are configuration reproductions rather than
measurements, but regenerating them keeps the suite honest against the
paper's published parameters.
"""

from repro.analysis.report import format_table
from repro.config import LINE_BYTES, baseline_config
from repro.workloads import suite

from _common import run_once, save_result, show


def test_table2_workloads(benchmark):
    rows = run_once(benchmark, suite.table2_rows)
    table = format_table(
        ["suite", "benchmark", "abbr", "mem footprint"],
        [list(r) for r in rows],
        title="Table II — workload characteristics",
    )
    show("Table II", table)
    save_result("table2_workloads", table)

    assert len(rows) == 20
    by_abbr = {r[2]: r[3] for r in rows}
    # Spot-check the paper's extremes.
    assert by_abbr["RandAccess"] == "15.0 GB"
    assert by_abbr["Bitcoin"] == "5.6 GB"
    assert by_abbr["Lulesh"] == "24 MB"


def test_table3_system(benchmark):
    cfg = run_once(benchmark, baseline_config)
    rows = [
        ["Number of GPUs", str(cfg.n_gpus)],
        ["Total number of SMs", str(cfg.n_gpus * cfg.gpu.n_sms)],
        ["Max warps per SM", str(cfg.gpu.warps_per_sm)],
        ["GPU frequency", f"{cfg.gpu.freq_hz / 1e9:g} GHz"],
        ["OS page size", f"{cfg.page_bytes // 2**20} MB"],
        ["Cache line", f"{LINE_BYTES} B"],
        ["Total L2 cache", f"{cfg.total_llc_bytes // 2**20} MB"],
        ["Inter-GPU link", f"{cfg.link.inter_gpu_bytes_per_s / 1e9:g} GB/s"],
        ["CPU-GPU link", f"{cfg.link.cpu_gpu_bytes_per_s / 1e9:g} GB/s"],
        ["Total DRAM bandwidth",
         f"{cfg.n_gpus * cfg.memory.bandwidth_bytes_per_s / 1e12:g} TB/s"],
        ["Total DRAM capacity",
         f"{cfg.n_gpus * cfg.memory.capacity_bytes // 2**30} GB"],
    ]
    table = format_table(
        ["parameter", "value"], rows, title="Table III — baseline system"
    )
    show("Table III", table)
    save_result("table3_system", table)

    assert cfg.n_gpus * cfg.gpu.n_sms == 256
    assert cfg.total_llc_bytes == 32 * 2**20
    assert cfg.n_gpus * cfg.memory.capacity_bytes == 128 * 2**30
