"""Extension: point-to-point NVLink mesh vs NVSwitch-style fabric.

The paper's DGX-1-style baseline gives every GPU pair a dedicated
64 GB/s link; its reference [51] (NVSwitch) replaces the mesh with a
fabric port per GPU.  The trade-off: a switch serves *skewed* traffic
(one hot home GPU) at full port rate where a mesh is pinched by a single
pairwise link, while the mesh's aggregate bandwidth scales with the peer
count for *spread* traffic.  Topology only changes pricing, so one
simulation per workload serves both designs.
"""

from repro.analysis.report import format_table
from repro.config import TOPOLOGY_P2P, TOPOLOGY_SWITCH, baseline_config
from repro.perf.model import PerformanceModel
from repro.sim.driver import run_workload

from _common import run_once, save_result, show

WORKLOADS = ["Lulesh", "XSBench", "SSSP", "bfs-road", "HPGMG"]


def _compute():
    base = baseline_config()
    runs = {w: run_workload(w, base, label="numa-gpu") for w in WORKLOADS}
    out = {}
    for topology in (TOPOLOGY_P2P, TOPOLOGY_SWITCH):
        cfg = base.replace(
            link=base.link.__class__(
                inter_gpu_bytes_per_s=base.link.inter_gpu_bytes_per_s,
                cpu_gpu_bytes_per_s=base.link.cpu_gpu_bytes_per_s,
                latency_ns=base.link.latency_ns,
                topology=topology,
            )
        )
        model = PerformanceModel(cfg)
        out[topology] = {w: model.total_time_s(r) for w, r in runs.items()}
    return out


def test_topology_tradeoff(benchmark):
    times = run_once(benchmark, _compute)
    rows = []
    for w in WORKLOADS:
        ratio = times[TOPOLOGY_P2P][w] / times[TOPOLOGY_SWITCH][w]
        rows.append([w, f"{ratio:.2f}x"])
    table = format_table(
        ["workload", "switch speedup over p2p mesh (64 GB/s each)"],
        rows,
        title="Extension — interconnect topology at equal link/port rate",
    )
    show("Topology extension", table)
    save_result("ext_topology", table)

    # First-touch spreads shared pages over all peers, so the mesh's
    # aggregate (3 x 64 GB/s per GPU) beats a single 64 GB/s port for
    # every link-bound workload: the switch must overprovision its port
    # rate to match — exactly why NVSwitch ports carry multiple links.
    for w in WORKLOADS:
        assert times[TOPOLOGY_SWITCH][w] >= times[TOPOLOGY_P2P][w] * 0.99, w

    # With a port as fast as the mesh aggregate, the switch matches it.
    base = baseline_config()
    runs = {w: run_workload(w, base, label="numa-gpu") for w in WORKLOADS}
    fat_port = base.replace(
        link=base.link.__class__(
            inter_gpu_bytes_per_s=3 * base.link.inter_gpu_bytes_per_s,
            topology=TOPOLOGY_SWITCH,
        )
    )
    model = PerformanceModel(fat_port)
    for w in WORKLOADS:
        assert model.total_time_s(runs[w]) <= times[TOPOLOGY_P2P][w] * 1.01
