"""Figure 5: total memory capacity (across 4 GPUs) needed to cover each
application's shared working set, against the aggregate system LLC.

Paper shape: the shared footprint exceeds the 32 MB aggregate LLC for
most workloads by orders of magnitude — on-chip caching cannot capture
it, which is why CARVE carves cache capacity out of GPU memory instead.
"""

from repro.analysis.report import format_table
from repro.analysis.sharing import profile_sharing
from repro.sim.experiments import NUMA_GPU, config_for
from repro.workloads import suite
from repro.workloads.base import generate_trace

from _common import run_once, save_result, show


def _compute():
    cfg = config_for(NUMA_GPU)
    out = {}
    for spec in suite.SUITE:
        profile = profile_sharing(generate_trace(spec, cfg), cfg)
        # Already in real bytes: the page count is scale-invariant.
        out[spec.abbr] = profile.shared_footprint_bytes()
    return out, cfg


def test_fig05_shared_footprint(benchmark):
    footprints, cfg = run_once(benchmark, _compute)
    llc = cfg.total_llc_bytes
    rows = [
        [abbr, f"{fp / 2**20:.1f} MB", f"{fp / llc:.1f}x"]
        for abbr, fp in footprints.items()
    ]
    table = format_table(
        ["workload", "shared footprint", "vs 32MB aggregate LLC"],
        rows,
        title="Fig. 5 — shared working-set footprint (real bytes)",
    )
    show("Figure 5", table)
    save_result("fig05_footprint", table)

    # Most workloads' shared footprints dwarf the aggregate LLC.
    exceeding = [fp for fp in footprints.values() if fp > llc]
    assert len(exceeding) >= 12

    # The RW-shared group exceeds it without exception.
    for abbr, group in suite.GROUPS.items():
        if group in (suite.GROUP_RW_SHARED, suite.GROUP_LATENCY):
            assert footprints[abbr] > llc

    # XSBench and HPGMG-amry carry multi-GB shared footprints (the
    # RDC-size-sensitive workloads of Table V).
    assert footprints["XSBench"] > 2 * 2**30
    assert footprints["HPGMG-amry"] > 2 * 2**30
