"""Load benchmark for the ``repro serve`` job service (docs/serve.md).

Drives concurrent submissions through the real socket path — a
:class:`~repro.serve.service.ThreadedServer` on an ephemeral port, N
client threads hammering ``POST /jobs`` — and records:

- **submit latency** (p50/p95, ms): POST round-trip under concurrency,
  covering dedup lookup + queue admission;
- **throughput** (jobs/s): unique configs executed per second of wall
  time, end to end (submit → terminal);
- **dedup hit ratio**: fraction of submissions answered without
  execution (coalesced in flight or served from the CAS) — the number
  that says content addressing is actually absorbing repeat traffic.

The mix is deliberately skewed: each client submits every config from
a small shared set several times over, so most submissions *should*
dedup.  The bench asserts that — exactly one execution per unique
config — before recording any numbers, so a dedup regression fails the
bench rather than flattering its throughput.

Results land in the committed, provenance-stamped ``BENCH_serve.json``
(git sha, CODE_VERSION, timestamp, trend history — see
``_common.save_bench_json``).  ``--smoke`` shrinks the mix and skips
recording: CI wall clocks are too noisy to commit.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full, records
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.serve import ServeClient, ThreadedServer

from _common import save_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

#: The unique-config pool: one system across distinct workload picks.
WORKLOAD_SETS = (
    ("Lulesh",), ("XSBench",), ("AMG",), ("CoMD",),
    ("MCB",), ("HPGMG",), ("Euler",), ("MiniAMR",),
)


def run_load(clients: int, unique: int, repeats: int,
             queue_depth: int) -> dict:
    """One load run; returns the measured payload (no stamping)."""
    unique_sets = WORKLOAD_SETS[:unique]
    submit_ms: list[float] = []
    responses: list[dict] = []
    lock = threading.Lock()

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        with ThreadedServer(tmp, pool_jobs=1,
                            queue_depth=queue_depth) as srv:
            def client_main(idx: int) -> None:
                c = ServeClient(port=srv.port, timeout=120)
                for r in range(repeats):
                    for ws in unique_sets:
                        t0 = time.perf_counter()
                        resp = c.submit("numa-gpu", workloads=list(ws))
                        dt = (time.perf_counter() - t0) * 1e3
                        while resp.status == 429:
                            time.sleep(0.05)
                            resp = c.submit("numa-gpu",
                                            workloads=list(ws))
                        with lock:
                            submit_ms.append(dt)
                            responses.append({"status": resp.status,
                                              "dedup": resp["dedup"],
                                              "id": resp["id"]})

            t_start = time.perf_counter()
            threads = [threading.Thread(target=client_main, args=(i,))
                       for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            waiter = ServeClient(port=srv.port, timeout=120)
            for r in responses:
                waiter.wait(r["id"], timeout=300)
            elapsed_s = time.perf_counter() - t_start
            snapshot = waiter.metricsz().body

    executed = sum(1 for r in responses if r["dedup"] == "new")
    total = len(responses)
    hits = sum(1 for r in responses if r["dedup"] in ("coalesced",
                                                      "cached"))
    # Correctness gate before any perf number: content addressing must
    # have collapsed every repeat — one execution per unique config.
    assert executed == len(unique_sets), (
        f"dedup broke: {executed} executions for {len(unique_sets)} "
        f"unique configs"
    )
    assert hits == total - executed

    submit_ms.sort()

    def pct(p: float) -> float:
        return submit_ms[min(len(submit_ms) - 1,
                             int(p * len(submit_ms)))]

    serve_counters = {
        name: metric["values"].get("", 0)
        for name, metric in snapshot.items()
        if name.startswith("serve.") and metric["kind"] == "counter"
        and not metric["labels"]
    }
    return {
        "clients": clients,
        "unique_configs": len(unique_sets),
        "submissions": total,
        "executions": executed,
        "dedup_hit_ratio": round(hits / total, 4),
        "p50_submit_ms": round(statistics.median(submit_ms), 3),
        "p95_submit_ms": round(pct(0.95), 3),
        "jobs_per_s": round(executed / elapsed_s, 3),
        "elapsed_s": round(elapsed_s, 3),
        "serve_counters": serve_counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small mix, assertions only, nothing "
                             "recorded (CI mode)")
    parser.add_argument("--clients", type=int, default=None,
                        help="client threads (default: 8 full / "
                             "3 smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="times each client resubmits the whole "
                             "config set (default: 4 full / 2 smoke)")
    args = parser.parse_args(argv)

    clients = args.clients or (3 if args.smoke else 8)
    repeats = args.repeats or (2 if args.smoke else 4)
    unique = 3 if args.smoke else len(WORKLOAD_SETS)

    payload = run_load(clients=clients, unique=unique, repeats=repeats,
                       queue_depth=max(8, unique + 2))
    print(f"serve load: {payload['submissions']} submissions from "
          f"{clients} clients -> {payload['executions']} executions "
          f"(dedup hit ratio {payload['dedup_hit_ratio']:.0%})")
    print(f"  submit p50 {payload['p50_submit_ms']:.1f} ms, "
          f"p95 {payload['p95_submit_ms']:.1f} ms; "
          f"{payload['jobs_per_s']:.2f} unique jobs/s end to end")

    if args.smoke:
        print("serve bench ok (smoke: not recorded)")
        return 0
    save_bench_json(OUTPUT, payload, trend_keys=(
        "p50_submit_ms", "p95_submit_ms", "jobs_per_s",
        "dedup_hit_ratio",
    ))
    print(f"recorded to {OUTPUT.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
