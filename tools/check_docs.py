#!/usr/bin/env python
"""Docs consistency checker (run by the CI docs job).

Two families of checks over the repository's Markdown:

1. **Intra-repo links** — every relative Markdown link target
   (``[text](path)``, anchors stripped) must exist on disk.  External
   links (``http(s)://``, ``mailto:``) are ignored.
2. **Metric names** — every backticked token that *looks like* a metric
   (dotted lower-case name whose first segment is a known metric
   subsystem, e.g. `` `rdc.hit` `` or `` `link.bytes{src,dst}` ``) must
   resolve against the live registry (`repro.obs.metrics.METRIC_NAMES`)
   or the trace-event kinds (`repro.obs.events.EVENT_KINDS`); rendered
   labels must match the spec's declared labels.  The reverse holds
   too: every registered metric and event kind must be documented in
   ``docs/metrics.md``.
3. **Service endpoints** — every backticked ``METHOD /path`` token
   (e.g. `` `GET /jobs/<id>` ``) must match a route declared in
   ``repro.serve.routes.ROUTES``, and every declared route must appear
   in the API reference ``docs/serve.md`` — same two-direction contract
   as the metrics table.
4. **Lint rule ids** — every rule id registered in
   ``repro.lint.engine.ALL_RULE_IDS`` must have a row in the rule
   table of ``docs/lint.md``, and every id-shaped token in that table
   must be a registered rule — so a rule can neither land undocumented
   nor linger in the docs after removal.
5. **CLI subcommands** — every subcommand registered in
   ``src/repro/cli.py`` (found by AST walk over ``add_parser`` calls,
   so this file needs no simulator imports) must be mentioned in
   ``README.md`` as `` `repro <name>` `` or ``python -m repro <name>``,
   so new subcommands can't silently miss the quick-start.

Metric names are stable contracts (see docs/metrics.md); this checker
is what enforces the contract in both directions.  Token resolution is
shared with the OBS001 lint rule via
:class:`repro.lint.resolver.MetricNameResolver`, so Markdown docs and
Python string literals are held to the same definition of "known
metric".

Usage:  python tools/check_docs.py [repo_root]
Exit status 0 when clean, 1 with one line per problem otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.engine import ALL_RULE_IDS  # noqa: E402
from repro.lint.resolver import MetricNameResolver  # noqa: E402
from repro.obs.events import EVENT_KINDS  # noqa: E402
from repro.obs.metrics import SPECS  # noqa: E402
from repro.serve.routes import ROUTE_NAMES, ROUTES  # noqa: E402

#: Directories never scanned for Markdown.
SKIP_DIRS = {".git", ".simcache", ".repro-journal", "results",
             "node_modules", "__pycache__"}

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked endpoint references: `` `GET /jobs/<id>/result` ``.
_ENDPOINT_RE = re.compile(
    r"`((?:GET|POST|PUT|DELETE|PATCH|HEAD) /[^`]*)`"
)

#: Shared resolver instance (the contract is fixed for the process).
_RESOLVER = MetricNameResolver(SPECS, EVENT_KINDS)

#: A rule-table row in docs/lint.md: ``| DET004 | error | ... |``.
_RULE_ROW_RE = re.compile(r"^\|\s*([A-Z]{3,5}\d{3})\s*\|", re.MULTILINE)


def markdown_files(root: Path) -> list[Path]:
    """Every tracked-ish Markdown file under *root* (skip caches etc.)."""
    out = []
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(part in SKIP_DIRS for part in rel.parts):
            continue
        out.append(path)
    return out


def check_links(md: Path, root: Path) -> list[str]:
    """Broken relative link targets in one file, as problem strings."""
    problems = []
    text = md.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (md.parent / target).resolve()
        if not resolved.exists():
            problems.append(
                f"{md.relative_to(root)}: broken link -> {match.group(1)}"
            )
    return problems


def check_metric_tokens(md: Path, root: Path) -> list[str]:
    """Backticked metric-looking tokens that don't resolve, per file."""
    text = md.read_text(encoding="utf-8")
    return [
        f"{md.relative_to(root)}: {problem}"
        for _token, problem in _RESOLVER.markdown_problems(text)
    ]


def check_reference_complete(root: Path) -> list[str]:
    """Every registered metric / event kind appears in docs/metrics.md."""
    ref = root / "docs" / "metrics.md"
    if not ref.exists():
        return ["docs/metrics.md is missing"]
    text = ref.read_text(encoding="utf-8")
    problems = []
    for spec in SPECS:
        rendered = spec.name + (
            "{" + ",".join(spec.labels) + "}" if spec.labels else ""
        )
        if f"`{rendered}`" not in text:
            problems.append(
                f"docs/metrics.md: registered metric `{rendered}` "
                f"is undocumented"
            )
    for kind in sorted(EVENT_KINDS):
        if f"`{kind}`" not in text:
            problems.append(
                f"docs/metrics.md: trace-event kind `{kind}` is undocumented"
            )
    return problems


def check_endpoint_tokens(md: Path, root: Path) -> list[str]:
    """Backticked ``METHOD /path`` tokens that match no declared route."""
    problems = []
    text = md.read_text(encoding="utf-8")
    for match in _ENDPOINT_RE.finditer(text):
        token = match.group(1)
        if token not in ROUTE_NAMES:
            problems.append(
                f"{md.relative_to(root)}: endpoint `{token}` matches no "
                f"route in repro.serve.routes.ROUTES"
            )
    return problems


def check_routes_documented(root: Path) -> list[str]:
    """Every declared route appears in the API reference docs/serve.md."""
    ref = root / "docs" / "serve.md"
    if not ref.exists():
        return ["docs/serve.md is missing"]
    text = ref.read_text(encoding="utf-8")
    problems = []
    for spec in ROUTES:
        if f"`{spec.rendered()}`" not in text:
            problems.append(
                f"docs/serve.md: declared route `{spec.rendered()}` "
                f"is undocumented"
            )
    return problems


def check_lint_rules_documented(root: Path) -> list[str]:
    """docs/lint.md rule table <-> registered rule ids, both ways."""
    ref = root / "docs" / "lint.md"
    if not ref.exists():
        return ["docs/lint.md is missing"]
    documented = set(_RULE_ROW_RE.findall(ref.read_text(encoding="utf-8")))
    registered = set(ALL_RULE_IDS)
    problems = []
    for rule_id in sorted(registered - documented):
        problems.append(
            f"docs/lint.md: registered lint rule {rule_id} has no row "
            f"in the rule table"
        )
    for rule_id in sorted(documented - registered):
        problems.append(
            f"docs/lint.md: rule table documents {rule_id}, which is "
            f"not a registered lint rule"
        )
    return problems


def cli_subcommands(root: Path) -> list[str]:
    """Subcommand names registered in cli.py, via AST (no imports).

    The CLI module imports numpy transitively and the docs CI job
    installs no third-party packages, so the names are read from the
    source text: every ``<x>.add_parser("name", ...)`` call.
    """
    import ast

    source = (root / "src" / "repro" / "cli.py").read_text(encoding="utf-8")
    names = []
    for node in ast.walk(ast.parse(source)):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            names.append(node.args[0].value)
    return sorted(set(names))


def check_cli_commands_documented(root: Path) -> list[str]:
    """Every CLI subcommand is mentioned in README.md."""
    readme = root / "README.md"
    if not readme.exists():
        return ["README.md is missing"]
    text = readme.read_text(encoding="utf-8")
    problems = []
    for name in cli_subcommands(root):
        if (f"`repro {name}`" not in text
                and f"python -m repro {name}" not in text):
            problems.append(
                f"README.md: CLI subcommand `{name}` (registered in "
                f"src/repro/cli.py) is missing from the quick-start — "
                f"mention it as `repro {name}` or `python -m repro {name}`"
            )
    return problems


def run_checks(root: Path) -> list[str]:
    problems: list[str] = []
    for md in markdown_files(root):
        problems.extend(check_links(md, root))
        problems.extend(check_metric_tokens(md, root))
        problems.extend(check_endpoint_tokens(md, root))
    problems.extend(check_reference_complete(root))
    problems.extend(check_routes_documented(root))
    problems.extend(check_lint_rules_documented(root))
    problems.extend(check_cli_commands_documented(root))
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else REPO_ROOT
    problems = run_checks(root)
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} docs problem(s).", file=sys.stderr)
        return 1
    n = len(markdown_files(root))
    print(f"docs ok: {n} markdown files, "
          f"{len(SPECS)} metrics + {len(EVENT_KINDS)} event kinds + "
          f"{len(ROUTES)} routes + {len(ALL_RULE_IDS)} lint rules + "
          f"{len(cli_subcommands(root))} CLI subcommands cross-checked.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
