#!/usr/bin/env python
"""End-to-end acceptance drive of a live ``repro serve`` process.

Run by the CI ``serve`` job (and usable locally).  Spawns the real CLI
(``python -m repro serve``) as a subprocess, then exercises the whole
documented contract through the real socket:

1.  ``GET /healthz`` answers and reports an empty queue.
2.  Two *concurrent* submissions of the same config coalesce onto one
    job id — exactly one execution happens.
3.  A ``GET /jobs/<id>/events`` long-poll follows the job live from
    ``job.queued`` through per-point ``point.done`` to ``job.done``,
    with a gapless cursor.
4.  ``GET /jobs/<id>`` reaches ``done``; ``GET /jobs/<id>/result``
    carries per-workload digests and a provenance fingerprint.
5.  A post-completion resubmission is a CAS hit (``"dedup": "cached"``)
    and its result matches the executed one byte for byte.
6.  ``GET /jobs/<id>/report`` returns the HTML dashboard.
7.  ``GET /jobs/<id>/trace`` returns the assembled Perfetto timeline:
    labeled worker rows, every span carrying the job's trace id, no
    unfinished spans and no damaged spill records.
8.  ``GET /metricsz`` confirms the dedup counters: 1 coalesced, 1
    cached, and a single execution's completion.

Exit status 0 when every step holds; 1 with a message otherwise.  The
store directory (CAS + journals) is left behind at ``--store`` so CI
can upload it as an artifact on failure.

Usage::

    PYTHONPATH=src python tools/serve_e2e.py [--store DIR] [--port N]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

SYSTEM = "carve-hwc"
WORKLOADS = ["Lulesh", "XSBench"]


def wait_for_server(client: ServeClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.healthz().ok:
                return
        except OSError:
            time.sleep(0.2)
    raise RuntimeError(f"server not answering after {timeout}s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--store", default="serve-e2e-store",
                        help="store directory (kept for CI artifacts)")
    parser.add_argument("--port", type=int, default=8971)
    args = parser.parse_args(argv)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", str(args.port),
         "--jobs", "2", "--queue-depth", "4", "--store", args.store],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        client = ServeClient(port=args.port, timeout=60)
        wait_for_server(client)
        health = client.healthz()
        assert health["ok"] and health["queue_depth"] == 0, health.body

        # -- concurrent duplicate submissions coalesce ------------------
        results: list = [None, None]

        def submit(slot: int) -> None:
            results[slot] = client.submit(SYSTEM, workloads=WORKLOADS,
                                          use_cache=False)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        a, b = results
        assert a.status in (200, 201) and b.status in (200, 201), \
            (a.body, b.body)
        assert a["id"] == b["id"], \
            f"concurrent duplicates got distinct jobs: {a.body} {b.body}"
        dispositions = sorted((a["dedup"], b["dedup"]))
        assert dispositions == ["coalesced", "new"], dispositions
        job_id = a["id"]
        print(f"e2e: concurrent duplicates coalesced onto {job_id}")

        # -- the live event stream follows the job to completion --------
        seen: list = []
        cursor = 0
        stream_deadline = time.monotonic() + 600
        while time.monotonic() < stream_deadline:
            stream = client.events(job_id, since=cursor, wait=10)
            assert stream.status == 200, stream.body
            seen.extend(stream["events"])
            cursor = stream["next"]
            if stream["state"] in ("done", "failed", "cancelled") \
                    and not stream["events"]:
                break
        kinds = [e["kind"] for e in seen]
        assert kinds[0] == "job.queued", kinds
        assert "job.running" in kinds, kinds
        assert kinds[-1] == "job.done", kinds
        assert kinds.count("point.done") == len(WORKLOADS), kinds
        assert [e["seq"] for e in seen] == list(range(1, len(seen) + 1)), \
            "event stream has gaps"
        trace_id = next(e["trace_id"] for e in seen if "trace_id" in e)
        print(f"e2e: streamed {len(seen)} events live "
              f"(trace {trace_id}): {' -> '.join(kinds)}")

        # -- completion, result, provenance -----------------------------
        final = client.wait(job_id, timeout=600)
        assert final["state"] == "done", final.body
        result = client.result(job_id)
        assert result.status == 200 and result["ok"], result.body
        for w in WORKLOADS:
            digest = result["results"][w]["metrics"]
            assert digest["sim.accesses"] > 0, digest
        fp = result["fingerprint"]
        assert fp["config_hash"] and fp["code_version"], fp
        print(f"e2e: {job_id} done; fingerprint {fp['config_hash']} "
              f"@ code_version {fp['code_version']}")

        # -- post-completion resubmit is a CAS hit ----------------------
        cached = client.submit(SYSTEM, workloads=WORKLOADS,
                               use_cache=False)
        assert cached.status == 200 and cached["dedup"] == "cached", \
            cached.body
        assert cached["state"] == "done"
        assert client.result(cached["id"]).body == result.body
        print(f"e2e: resubmission served from CAS as {cached['id']}")

        # -- the report endpoint renders HTML ---------------------------
        report = client.report(job_id)
        assert report.status == 200, report.body
        assert report.headers["content-type"].startswith("text/html")
        assert "<html" in report.body and job_id in report.body
        print(f"e2e: report is {len(report.body)} bytes of HTML")

        # -- the assembled timeline -------------------------------------
        trace = client.trace(job_id)
        assert trace.status == 200, trace.body
        other = trace["otherData"]
        assert other["trace_id"] == trace_id, other
        assert other["unfinished_spans"] == 0, other
        assert other["damaged_span_records"] == 0, other
        slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert slices and all(
            s["args"]["trace_id"] == trace_id for s in slices
        ), "a span slice is missing the job's trace id"
        rows = {e["args"]["name"] for e in trace["traceEvents"]
                if e["name"] == "process_name"}
        assert "runner" in rows and "serve" in rows, rows
        assert any(r.startswith("worker ") for r in rows), rows
        print(f"e2e: timeline has {other['spans']} spans on rows "
              f"{sorted(rows)}")

        # -- metrics agree with the story -------------------------------
        snap = client.metricsz().body
        counters = {k: v["values"].get("", 0) for k, v in snap.items()
                    if k.startswith("serve.")
                    and v["kind"] == "counter" and not v["labels"]}
        assert counters["serve.submitted"] == 3, counters
        assert counters["serve.coalesced"] == 1, counters
        assert counters["serve.deduped"] == 1, counters
        assert counters["serve.rejected"] == 0, counters
        print(f"e2e: counters {counters}")

        print("serve e2e ok: coalesce + CAS hit + report, "
              "one execution total")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()


if __name__ == "__main__":
    sys.exit(main())
