#!/usr/bin/env python
"""Graceful degradation: how well does CARVE mask a sick NUMA fabric?

The paper sells CARVE as insurance against slow inter-GPU links
(Fig. 14 sweeps healthy bandwidths).  This study asks the operational
variant of that question: what happens when links *fail* at runtime —
degraded to a fraction of their bandwidth, or knocked out entirely for
a stretch of kernels?  The fault schedule is deterministic and seeded
(see ``LinkFaultConfig``), so every system sees exactly the same sick
fabric and the comparison is apples-to-apples.

Two scenarios per system:

* **degraded** — every kernel, each link independently runs at reduced
  bandwidth with some probability (flaky cables, thermal throttling);
* **outage** — one directional link is dead for the whole run; its
  traffic is rerouted through an intermediate GPU (both detour hops pay
  the bytes).

Because CARVE caches remote data in local DRAM, it sends far fewer
bytes across the fabric — so the same fault costs it far less.

Run:  python examples/fabric_fault_study.py [workload ...]

With ``--trace-dir DIR`` the study additionally re-runs the first
workload's outage scenario on both systems with full tracing enabled
and writes one Chrome ``trace_event`` file per system into *DIR*.
Open them at https://ui.perfetto.dev to compare the two fabrics side
by side — see docs/observability.md for the guided tour.
"""

import argparse
import os

from repro import PerformanceModel, baseline_config, run_workload
from repro.analysis.report import format_table
from repro.config import LinkFaultConfig, LinkFaultEvent
from repro.obs import Observability
from repro.obs.export import write_chrome_trace
from repro.perf.model import geometric_mean

DEFAULT_WORKLOADS = ["Lulesh", "HPGMG", "XSBench", "SSSP", "bfs-road"]

#: Flaky fabric: each link, each kernel, 25% chance of running somewhere
#: in [25%, 100%) of nominal bandwidth.
DEGRADED = LinkFaultConfig(seed=42, degrade_prob=0.25, min_scale=0.25)

#: Hard outage: the 0 -> 1 link is down for the entire run.
OUTAGE = LinkFaultConfig(
    events=(LinkFaultEvent(first_kernel=0, last_kernel=10_000,
                           scale=0.0, src=0, dst=1),),
)


def geomean_time(cfg, results):
    model = PerformanceModel(cfg)
    return geometric_mean([model.total_time_s(r) for r in results.values()])


def trace_outage(workload: str, systems: dict, trace_dir: str) -> None:
    """Re-run *workload*'s outage scenario with tracing; write traces."""
    os.makedirs(trace_dir, exist_ok=True)
    print()
    print(f"Tracing {workload} under the link outage "
          f"(0 -> 1 dead) on each system:")
    for sys_name, base in systems.items():
        cfg = base.replace(link_faults=OUTAGE)
        obs = Observability(trace=True)
        result = run_workload(workload, cfg, label=f"{sys_name}/outage",
                              use_cache=False, obs=obs)
        path = os.path.join(trace_dir, f"{workload}-{sys_name}-outage"
                                       ".trace.json")
        write_chrome_trace(path, result, cfg, obs)
        total = result.total(include_warmup=True)
        link = obs.registry.get("link.bytes")
        bytes_total = sum(link.values().values())
        print(f"  {sys_name:10s} {len(obs.tracer)} events "
              f"({obs.tracer.dropped} dropped), "
              f"remote reads {total.remote_reads:,}, "
              f"fabric bytes {bytes_total:,} -> {path}")
    print("Open the trace files at https://ui.perfetto.dev "
          "(docs/observability.md walks through the comparison).")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("workloads", nargs="*", default=None,
                    help="Table II abbreviations (default: a fixed five)")
    ap.add_argument("--trace-dir", metavar="DIR",
                    help="also trace the first workload's outage run on "
                         "each system and write Chrome traces into DIR")
    args = ap.parse_args()
    workloads = args.workloads or DEFAULT_WORKLOADS
    systems = {
        "numa-gpu": baseline_config(),
        "carve-hwc": baseline_config().with_rdc(),
    }
    scenarios = {"healthy": None, "degraded": DEGRADED, "outage": OUTAGE}

    print(f"Simulating {len(workloads)} workloads x {len(systems)} systems "
          f"x {len(scenarios)} fabric scenarios ...")
    rows = []
    slowdowns = {}
    for sys_name, base in systems.items():
        times = {}
        for scen_name, faults in scenarios.items():
            cfg = base.replace(link_faults=faults)
            results = {
                w: run_workload(w, cfg, label=f"{sys_name}/{scen_name}")
                for w in workloads
            }
            times[scen_name] = geomean_time(cfg, results)
        slowdowns[sys_name] = {
            s: times[s] / times["healthy"] for s in scenarios
        }
        rows.append([
            sys_name,
            f"{slowdowns[sys_name]['degraded']:.2f}x",
            f"{slowdowns[sys_name]['outage']:.2f}x",
        ])

    print()
    print(format_table(
        ["system", "degraded fabric", "link outage"],
        rows,
        title="Geomean slowdown vs the same system on a healthy fabric",
    ))

    print()
    for scen in ("degraded", "outage"):
        numa = slowdowns["numa-gpu"][scen]
        carve = slowdowns["carve-hwc"][scen]
        masked = (numa - carve) / (numa - 1.0) if numa > 1.0 else 0.0
        print(f"{scen}: NUMA-GPU slows {numa:.2f}x, CARVE {carve:.2f}x "
              f"— the remote-data cache masks {masked:.0%} of the fault's "
              f"cost.")

    if args.trace_dir:
        trace_outage(workloads[0], systems, args.trace_dir)


if __name__ == "__main__":
    main()
