#!/usr/bin/env python
"""Graceful degradation: how well does CARVE mask a sick NUMA fabric?

The paper sells CARVE as insurance against slow inter-GPU links
(Fig. 14 sweeps healthy bandwidths).  This study asks the operational
variant of that question: what happens when links *fail* at runtime —
degraded to a fraction of their bandwidth, or knocked out entirely for
a stretch of kernels?  The fault schedule is deterministic and seeded
(see ``LinkFaultConfig``), so every system sees exactly the same sick
fabric and the comparison is apples-to-apples.

Two scenarios per system:

* **degraded** — every kernel, each link independently runs at reduced
  bandwidth with some probability (flaky cables, thermal throttling);
* **outage** — one directional link is dead for the whole run; its
  traffic is rerouted through an intermediate GPU (both detour hops pay
  the bytes).

Because CARVE caches remote data in local DRAM, it sends far fewer
bytes across the fabric — so the same fault costs it far less.

Run:  python examples/fabric_fault_study.py [workload ...]
"""

import sys

from repro import PerformanceModel, baseline_config, run_workload
from repro.analysis.report import format_table
from repro.config import LinkFaultConfig, LinkFaultEvent
from repro.perf.model import geometric_mean

DEFAULT_WORKLOADS = ["Lulesh", "HPGMG", "XSBench", "SSSP", "bfs-road"]

#: Flaky fabric: each link, each kernel, 25% chance of running somewhere
#: in [25%, 100%) of nominal bandwidth.
DEGRADED = LinkFaultConfig(seed=42, degrade_prob=0.25, min_scale=0.25)

#: Hard outage: the 0 -> 1 link is down for the entire run.
OUTAGE = LinkFaultConfig(
    events=(LinkFaultEvent(first_kernel=0, last_kernel=10_000,
                           scale=0.0, src=0, dst=1),),
)


def geomean_time(cfg, results):
    model = PerformanceModel(cfg)
    return geometric_mean([model.total_time_s(r) for r in results.values()])


def main() -> None:
    workloads = sys.argv[1:] or DEFAULT_WORKLOADS
    systems = {
        "numa-gpu": baseline_config(),
        "carve-hwc": baseline_config().with_rdc(),
    }
    scenarios = {"healthy": None, "degraded": DEGRADED, "outage": OUTAGE}

    print(f"Simulating {len(workloads)} workloads x {len(systems)} systems "
          f"x {len(scenarios)} fabric scenarios ...")
    rows = []
    slowdowns = {}
    for sys_name, base in systems.items():
        times = {}
        for scen_name, faults in scenarios.items():
            cfg = base.replace(link_faults=faults)
            results = {
                w: run_workload(w, cfg, label=f"{sys_name}/{scen_name}")
                for w in workloads
            }
            times[scen_name] = geomean_time(cfg, results)
        slowdowns[sys_name] = {
            s: times[s] / times["healthy"] for s in scenarios
        }
        rows.append([
            sys_name,
            f"{slowdowns[sys_name]['degraded']:.2f}x",
            f"{slowdowns[sys_name]['outage']:.2f}x",
        ])

    print()
    print(format_table(
        ["system", "degraded fabric", "link outage"],
        rows,
        title="Geomean slowdown vs the same system on a healthy fabric",
    ))

    print()
    for scen in ("degraded", "outage"):
        numa = slowdowns["numa-gpu"][scen]
        carve = slowdowns["carve-hwc"][scen]
        masked = (numa - carve) / (numa - 1.0) if numa > 1.0 else 0.0
        print(f"{scen}: NUMA-GPU slows {numa:.2f}x, CARVE {carve:.2f}x "
              f"— the remote-data cache masks {masked:.0%} of the fault's "
              f"cost.")


if __name__ == "__main__":
    main()
