#!/usr/bin/env python
"""Bring your own workload: define a WorkloadSpec and explore it.

Models a hypothetical multi-GPU graph-analytics kernel — a large
read-mostly CSR structure shared by all GPUs plus per-GPU frontier
data — then asks the questions a system designer would:

1. How NUMA-bound is it on the baseline?
2. What does page sharing look like (the Fig. 4 analysis)?
3. Does software replication fix it, or does it need CARVE?

Run:  python examples/custom_workload.py
"""

from repro import WorkloadSpec, baseline_config, generate_trace, run_workload, time_of
from repro.analysis.report import format_table
from repro.analysis.sharing import profile_sharing
from repro.config import REPLICATE_ALL, REPLICATE_READ_ONLY

GRAPH = WorkloadSpec(
    name="pagerank-like", abbr="pagerank", suite="custom",
    footprint_bytes=3 * 2**30,        # 3 GB graph + rank vectors
    n_kernels=8,                      # one kernel per iteration
    coverage=1.2,
    shared_page_frac=0.6,             # the CSR structure is shared ...
    shared_access_frac=0.55,
    rw_page_frac=0.25,                # ... and rank pages are written
    line_write_frac=0.08,             # by a few owners (false sharing)
    write_frac=0.2, shared_write_frac=0.04,
    private_pattern="uniform",        # frontier-driven irregular access
    shared_pattern="zipf", zipf_alpha=1.2,   # hub vertices are hot
    instr_per_access=6.0, concurrency_per_sm=24.0,
    seed=2024,
)


def main() -> None:
    base = baseline_config()

    # 1. Sharing analysis straight off the trace, no simulation needed.
    profile = profile_sharing(generate_trace(GRAPH, base), base)
    page = profile.access_distribution("page")
    line = profile.access_distribution("line")
    print(format_table(
        ["granularity", "private", "ro-shared", "rw-shared"],
        [
            ["2 MB page", f"{page.private:.1%}", f"{page.ro_shared:.1%}",
             f"{page.rw_shared:.1%}"],
            ["128 B line", f"{line.private:.1%}", f"{line.ro_shared:.1%}",
             f"{line.rw_shared:.1%}"],
        ],
        title=f"{GRAPH.name}: access distribution by sharing class",
    ))
    shared_gb = profile.shared_footprint_bytes() / 2**30
    print(f"\nShared working-set cover: {shared_gb:.1f} GB "
          f"(aggregate LLC: {base.total_llc_bytes / 2**20:.0f} MB)\n")

    # 2. How do the systems stack up?
    systems = {
        "NUMA-GPU": base,
        "+ RO replication": base.replace(replication=REPLICATE_READ_ONLY),
        "+ CARVE 2GB (HWC)": base.with_rdc(),
        "ideal (replicate all)": base.replace(replication=REPLICATE_ALL),
    }
    single = base.single_gpu()
    t_single = time_of(run_workload(GRAPH, single, label="single"), single)
    rows = []
    for name, cfg in systems.items():
        r = run_workload(GRAPH, cfg, label=name)
        rows.append([
            name,
            f"{t_single / time_of(r, cfg):.2f}x",
            f"{r.remote_fraction:.1%}",
            f"{r.replication_pressure:.2f}x",
        ])
    print(format_table(
        ["system", "speedup vs 1 GPU", "remote accesses", "memory pressure"],
        rows,
        title="System comparison",
    ))
    print()
    print("Reading: RO replication helps the read-only CSR pages but "
          "inflates memory; CARVE serves the read-write rank pages too, "
          "at a 6% capacity cost.")


if __name__ == "__main__":
    main()
