#!/usr/bin/env python
"""Interconnect planning: when does a faster NVLink stop mattering?

A system architect's view of Fig. 14: simulate the headline systems
once, then re-price the same traffic counters under many link
bandwidths (counters are bandwidth-independent, so the sweep is free).
Prints the geomean speedup curve and the bandwidth at which the
baseline finally matches what CARVE already achieves at 32 GB/s.

Run:  python examples/link_bandwidth_planning.py [workload ...]
"""

import sys

from repro import PerformanceModel, baseline_config, run_workload
from repro.analysis.report import series_table
from repro.config import LinkConfig
from repro.perf.model import geometric_mean

BWS_GBS = [8, 16, 32, 64, 128, 256, 512]
DEFAULT_WORKLOADS = ["Lulesh", "HPGMG", "XSBench", "SSSP", "bfs-road"]


def priced(cfg, bw_gbs):
    return cfg.replace(link=LinkConfig(
        inter_gpu_bytes_per_s=bw_gbs * 1e9,
        cpu_gpu_bytes_per_s=cfg.link.cpu_gpu_bytes_per_s,
        latency_ns=cfg.link.latency_ns,
    ))


def main() -> None:
    workloads = sys.argv[1:] or DEFAULT_WORKLOADS
    base = baseline_config()
    carve = base.with_rdc()
    single = base.single_gpu()

    print(f"Simulating {len(workloads)} workloads on 3 systems ...")
    runs = {
        "numa-gpu": (base, {w: run_workload(w, base, label="numa-gpu")
                            for w in workloads}),
        "carve-hwc": (carve, {w: run_workload(w, carve, label="carve-hwc")
                              for w in workloads}),
    }
    t_single = {
        w: PerformanceModel(single).total_time_s(
            run_workload(w, single, label="single-gpu"))
        for w in workloads
    }

    series = {}
    for name, (cfg, results) in runs.items():
        curve = {}
        for bw in BWS_GBS:
            model = PerformanceModel(priced(cfg, bw))
            curve[float(bw)] = geometric_mean([
                t_single[w] / model.total_time_s(r)
                for w, r in results.items()
            ])
        series[name] = curve
    print()
    print(series_table(series, "link GB/s",
                       title="Geomean speedup over 1 GPU vs link bandwidth"))

    carve_at_32 = series["carve-hwc"][32.0]
    crossover = next(
        (bw for bw in BWS_GBS if series["numa-gpu"][float(bw)] >= carve_at_32),
        None,
    )
    print()
    if crossover is None:
        print(f"No simulated bandwidth (up to {BWS_GBS[-1]} GB/s) lets the "
              f"baseline match CARVE at 32 GB/s ({carve_at_32:.2f}x).")
    else:
        print(f"The baseline needs ~{crossover} GB/s links to match what "
              f"CARVE delivers on 32 GB/s links ({carve_at_32:.2f}x) — "
              f"capacity in local memory substitutes for interconnect.")


if __name__ == "__main__":
    main()
