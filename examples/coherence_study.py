#!/usr/bin/env python
"""Coherence design-space walk-through (Section IV-B).

For one read-write-shared HPC workload (HPGMG), compares the four ways
of keeping Remote Data Caches coherent and shows *why* each behaves as
it does: RDC hit rates, invalidation traffic, and the analytic
kernel-boundary flush costs of Table IV.

Run:  python examples/coherence_study.py
"""

from repro import baseline_config, run_workload, time_of
from repro.analysis.flush_cost import table4_rows
from repro.analysis.report import format_table
from repro.config import (
    COHERENCE_DIRECTORY,
    COHERENCE_HARDWARE,
    COHERENCE_NONE,
    COHERENCE_SOFTWARE,
    INVALIDATE_MSG_BYTES,
)

WORKLOAD = "HPGMG"
PROTOCOLS = [
    (COHERENCE_NONE, "no coherence (upper bound)"),
    (COHERENCE_SOFTWARE, "software (flush per kernel)"),
    (COHERENCE_HARDWARE, "GPU-VI + IMST broadcast"),
    (COHERENCE_DIRECTORY, "directory (targeted)"),
]


def main() -> None:
    base = baseline_config()
    t_numa = time_of(run_workload(WORKLOAD, base, label="numa-gpu"), base)

    rows = []
    for coherence, description in PROTOCOLS:
        cfg = base.with_rdc(coherence=coherence)
        r = run_workload(WORKLOAD, cfg, label=f"carve-{coherence}")
        total = r.total()
        inval_kb = total.invalidates_sent * INVALIDATE_MSG_BYTES / 1024
        rows.append([
            description,
            f"{t_numa / time_of(r, cfg):.2f}x",
            f"{total.rdc_hit_rate:.1%}",
            f"{r.remote_fraction:.1%}",
            f"{inval_kb:.0f} KB",
        ])

    print(format_table(
        ["protocol", "speedup vs NUMA-GPU", "RDC hit rate",
         "remote accesses", "invalidate traffic"],
        rows,
        title=f"RDC coherence on {WORKLOAD}",
    ))

    print()
    print("Why software coherence cannot just be extended to the RDC")
    print(format_table(
        ["cache", "invalidate", "flush dirty"],
        [list(r) for r in table4_rows(base.with_rdc())],
        title="Table IV — worst-case kernel-boundary costs",
    ))
    print()
    print("Software coherence flushes the RDC at every kernel boundary;")
    print("epoch counters make the flush free but the *refetch* is not —")
    print("all inter-kernel locality is lost, which is what the hit-rate")
    print("column above shows. Hardware coherence keeps the RDC warm and")
    print("the IMST keeps its invalidation traffic negligible.")


if __name__ == "__main__":
    main()
