#!/usr/bin/env python
"""BFS over a real graph on a NUMA multi-GPU.

Instead of a knob-calibrated synthetic trace, this scenario builds an
actual road-network-like graph with networkx, replays a level-
synchronous BFS over its CSR layout (one kernel per frontier level), and
studies it on the headline systems.  The interesting wrinkle: BFS writes
per-vertex state on every discovered edge, so hardware coherence pays
real invalidation refetches here — the Section V-E caveat about
frequent read-write sharing, observable end to end.

Run:  python examples/graph_bfs_study.py
"""

from repro import baseline_config, run_workload, time_of
from repro.analysis.report import format_table
from repro.analysis.sharing import profile_sharing
from repro.config import COHERENCE_HARDWARE, COHERENCE_NONE, REPLICATE_ALL
from repro.workloads.base import WorkloadSpec
from repro.workloads.graphs import (
    GraphWorkloadSpec,
    generate_bfs_trace,
    graph_footprint_lines,
)


def main() -> None:
    gspec = GraphWorkloadSpec(grid_width=96, grid_height=96, seed=11)
    base = baseline_config()

    print("Building the graph and replaying BFS ...")
    trace = generate_bfs_trace(gspec, base)
    print(f"  {trace.n_kernels} frontier levels, "
          f"{trace.n_accesses} memory accesses, "
          f"{graph_footprint_lines(gspec)} lines of CSR+state")

    profile = profile_sharing(trace, base)
    dist = profile.access_distribution("page")
    print(f"  sharing: {dist.private:.0%} private, "
          f"{dist.ro_shared:.0%} read-only shared, "
          f"{dist.rw_shared:.0%} read-write shared (page granularity)")
    print()

    wl = WorkloadSpec(
        name=gspec.name, abbr=gspec.name, suite="graph",
        footprint_bytes=graph_footprint_lines(gspec) * 128 * base.scale,
        n_kernels=1, warmup_kernels=0,
    )
    systems = {
        "NUMA-GPU": base,
        "CARVE (no coherence bound)": base.with_rdc(coherence=COHERENCE_NONE),
        "CARVE (GPU-VI + IMST)": base.with_rdc(coherence=COHERENCE_HARDWARE),
        "ideal": base.replace(replication=REPLICATE_ALL),
    }
    single = base.single_gpu()
    t_single = time_of(
        run_workload(wl, single, trace=trace, label="single"), single
    )
    rows = []
    for name, cfg in systems.items():
        r = run_workload(wl, cfg, trace=trace, label=name)
        total = r.total(include_warmup=True)
        rows.append([
            name,
            f"{t_single / time_of(r, cfg):.2f}x",
            f"{r.remote_fraction:.1%}",
            str(total.invalidates_sent),
        ])
    print(format_table(
        ["system", "speedup vs 1 GPU", "remote accesses", "invalidates"],
        rows, title="BFS on the headline systems",
    ))
    print()
    print("Note how hardware coherence trails the no-coherence bound here:")
    print("per-edge state writes broadcast invalidates and force peers to")
    print("refetch — the workload class the paper's Section V-E flags for")
    print("directory-based coherence at larger node counts.")


if __name__ == "__main__":
    main()
