#!/usr/bin/env python
"""Quickstart: simulate one workload on NUMA-GPU and on NUMA-GPU + CARVE.

Builds the Table III baseline 4-GPU system, runs the Lulesh workload on
it with and without a 2 GB CARVE Remote Data Cache, and reports the
remote-access fraction, RDC hit rate, and speedup — the paper's headline
mechanism in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import baseline_config, carve_config, run_workload, time_of


def main() -> None:
    numa = baseline_config()           # Table III: 4 GPUs, 64 GB/s links
    carve = carve_config()             # + 2 GB/GPU RDC, hardware coherence

    print("Simulating Lulesh on baseline NUMA-GPU ...")
    r_numa = run_workload("Lulesh", numa, label="numa-gpu")
    print("Simulating Lulesh on NUMA-GPU + CARVE (2 GB RDC, HW coherence) ...")
    r_carve = run_workload("Lulesh", carve, label="carve-hwc")

    t_numa = time_of(r_numa, numa)
    t_carve = time_of(r_carve, carve)

    print()
    print(f"remote accesses, NUMA-GPU : {r_numa.remote_fraction:6.1%}")
    print(f"remote accesses, CARVE    : {r_carve.remote_fraction:6.1%}")
    print(f"RDC hit rate              : {r_carve.total().rdc_hit_rate:6.1%}")
    print(f"CARVE speedup over NUMA-GPU: {t_numa / t_carve:.2f}x")

    single = numa.single_gpu()
    r_single = run_workload("Lulesh", single, label="single-gpu")
    t_single = time_of(r_single, single)
    print()
    print("Speedup over one GPU:")
    print(f"  NUMA-GPU        : {t_single / t_numa:.2f}x")
    print(f"  NUMA-GPU + CARVE: {t_single / t_carve:.2f}x")


if __name__ == "__main__":
    main()
