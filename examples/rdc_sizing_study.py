#!/usr/bin/env python
"""RDC sizing study: how much GPU memory should CARVE carve out?

Sweeps the Remote Data Cache size for three workloads with very
different shared working sets and weighs the speedup against the
capacity cost (the Table V trade-off):

* Lulesh     — small shared set: saturates at the smallest RDC;
* XSBench    — multi-GB shared set: keeps gaining with size;
* RandAccess — thrashes every size (CARVE's known outlier).

Run:  python examples/rdc_sizing_study.py
"""

from repro import baseline_config, run_workload, time_of
from repro.analysis.report import format_table
from repro.numa.unified_memory import assess_capacity_loss

GB = 2**30
SIZES_GB = [0.5, 1.0, 2.0, 4.0, 8.0]
WORKLOADS = ["Lulesh", "XSBench", "RandAccess"]


def main() -> None:
    base = baseline_config()
    print("Simulating the baseline (this may take a minute) ...")
    t_numa = {
        w: time_of(run_workload(w, base, label="numa-gpu"), base)
        for w in WORKLOADS
    }

    rows = []
    for size_gb in SIZES_GB:
        cfg = base.with_rdc(int(size_gb * GB))
        cells = [f"{size_gb:g} GB",
                 f"{size_gb / 32:.1%}"]
        for w in WORKLOADS:
            r = run_workload(w, cfg, label=f"carve-hwc-{size_gb:g}GB")
            cells.append(f"{t_numa[w] / time_of(r, cfg):.2f}x")
        rows.append(cells)

    print()
    print(format_table(
        ["RDC / GPU", "carve-out"] + [f"{w} gain" for w in WORKLOADS],
        rows,
        title="Speedup over baseline NUMA-GPU per RDC size",
    ))

    # The other side of the trade-off: what the lost capacity costs a
    # workload whose footprint already fills GPU memory.
    print()
    print("Capacity cost if the footprint already fills GPU memory")
    r = run_workload("XSBench", base, label="numa-gpu")
    t = time_of(r, base)
    for size_gb in SIZES_GB:
        spill = size_gb / 32  # carve-out fraction of a 32 GB GPU
        a = assess_capacity_loss(
            r.page_access_counts or [], spill, base, t, r.total().accesses
        )
        print(f"  {size_gb:>4g} GB carve-out -> spill {spill:5.1%} of pages, "
              f"slowdown {a.slowdown:.2f}x")


if __name__ == "__main__":
    main()
